"""Real-parallel evaluation of the query hot path.

The simulator's cost model is *simulated* — per-server clocks advance by
analytic charges — but the answers themselves are computed on real numpy
arrays, and until now that computation ran serially on the wall clock.
This module adds a process-pool runtime that evaluates the numpy hot
kernels (interval masks over region windows, candidate re-checks, and
per-object hit counts) in true parallel, while every simulated charge
stays on the main process exactly where the serial path makes it.

Determinism is the contract:

* work is partitioned along region boundaries, in region-index order —
  the same deterministic unit :meth:`QueryEngine._regions_by_server`
  assigns to simulated servers;
* each partition's kernel is pure (element-wise masks, ``flatnonzero``,
  integer counts — no float reductions whose order could drift);
* partial results are merged strictly in ascending partition order.

Concatenating per-partition coordinates in partition order reproduces
the serial ``flatnonzero`` output byte for byte, so answers, simulated
clocks, metrics, and bench fingerprints are bit-identical to serial
execution for any worker count (pinned by ``tests/query/test_parallel``).

Workers are forked (zero-copy: object arrays reach children via
copy-on-write memory, never pickling), so only tiny task descriptors and
the selective result coordinates cross the IPC boundary, and one task
covers a whole run of regions to amortize the round-trip.  Writes
invalidate the forked snapshot through the system's invalidation hooks;
the next parallel call re-forks against current data.  Whenever the pool
cannot be used (``workers <= 1``, payload below ``min_elements``, fork
unavailable, or a worker died) the same partitioned kernels run
in-process — results are identical either way, only wall time differs.
"""

from __future__ import annotations

import atexit
import os
import time
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..interval import Interval

__all__ = ["ParallelRuntime", "DEFAULT_MIN_ELEMENTS", "FALLBACK_REASONS"]

#: Every reason a kernel can take the in-process path instead of the
#: pool (the ``reason`` label of ``pdc_parallel_fallbacks_total``).
FALLBACK_REASONS = (
    "serial",          # workers <= 1: no pool was ever requested
    "closed",          # runtime explicitly closed
    "broken",          # an earlier failure disabled the pool for good
    "min_elements",    # payload too small to amortize fork/IPC
    "unbound",         # no system bound (nothing to snapshot)
    "no_fork",         # platform has no fork start method
    "fork_failed",     # OS refused the fork (e.g. EAGAIN)
    "stale",           # retry after a stale-snapshot re-fork still failed
    "worker_death",    # a pool worker died mid-task
)

#: Below this many elements a kernel runs in-process: the fork/IPC
#: round-trip costs more than the numpy work it would parallelize.
DEFAULT_MIN_ELEMENTS = 1 << 16


# ------------------------------------------------------------- worker side
#
# Forked workers inherit these module globals as they were in the parent
# at fork time.  The generation token guards against a worker forked from
# an older snapshot (another runtime re-set the globals between pool
# creation and the fork): a mismatch is reported back and the caller
# re-forks or falls back in-process — never silently computes on stale
# arrays.

_WORKER_ARRAYS: Dict[str, np.ndarray] = {}
_WORKER_GEN: int = 0
_GEN_COUNTER: int = 0
#: Parent wall instant of the most recent snapshot publish: forked
#: children inherit it, dating their own fork generation for the
#: dual-clock pool trace (:mod:`repro.obs.walltime`).
_WORKER_FORK_WALL: float = 0.0


class _StaleWorker(Exception):
    """A pool worker was forked from a different data snapshot."""


def _worker_array(gen: int, name: str) -> np.ndarray:
    if gen != _WORKER_GEN or name not in _WORKER_ARRAYS:
        raise _StaleWorker(f"worker snapshot gen={_WORKER_GEN}, task wants "
                           f"gen={gen} name={name!r}")
    return _WORKER_ARRAYS[name]


def _mask_span(gen: int, name: str, start: int, stop: int,
               interval: Interval) -> np.ndarray:
    """Hit coordinates of ``interval`` within ``[start, stop)`` — the
    per-partition form of :meth:`QueryEngine._mask_coords`."""
    data = _worker_array(gen, name)
    window = data[start:stop]
    return np.flatnonzero(interval.mask(window)).astype(np.int64) + start


def _filter_span(gen: int, name: str, coords: np.ndarray,
                 interval: Interval) -> np.ndarray:
    """Candidate re-check over one slice of already-selected coords."""
    data = _worker_array(gen, name)
    return coords[interval.mask(data[coords])]


def _count_span(gen: int, name: str, start: int, stop: int,
                interval: Interval) -> int:
    """Hit count of ``interval`` within ``[start, stop)`` (exact: a sum
    of booleans is an integer, so chunk totals add without drift)."""
    data = _worker_array(gen, name)
    return int(interval.mask(data[start:stop]).sum())


def _result_bytes(out) -> int:
    return int(out.nbytes) if isinstance(out, np.ndarray) else 8


def _profiled_call(fn, gen: int, args: tuple):
    """Worker-side stamp wrapper for profiled dispatches.

    Returns ``(result, stamps)`` where the stamp buffer carries the
    worker pid, the inherited fork-generation wall instant, kernel
    start/end, result-preparation end, and the result payload size.
    All stamps use ``time.perf_counter`` — CLOCK_MONOTONIC on Linux is
    system-wide, so they are directly comparable with the parent's.
    """
    t_start = time.perf_counter()
    out = fn(gen, *args)
    t_kernel_end = time.perf_counter()
    nbytes = _result_bytes(out)
    t_ret = time.perf_counter()
    return out, (
        os.getpid(), _WORKER_FORK_WALL, t_start, t_kernel_end, t_ret, nbytes
    )


# ------------------------------------------------------------- partitioning
def region_spans(obj, cstart: int, cstop: int,
                 n_parts: int) -> List[Tuple[int, int]]:
    """Split ``[cstart, cstop)`` into at most ``n_parts`` contiguous
    element spans along region boundaries, in region-index order.

    Each span is a run of whole regions (clipped to the window at the
    ends) — the same unit of work the simulated servers are assigned —
    so one task batches a region run per worker.  Spans are disjoint,
    ascending, and cover the window exactly.
    """
    if cstop <= cstart:
        return []
    offsets = obj.offsets
    first = int(np.searchsorted(offsets, cstart, side="right")) - 1
    last = int(np.searchsorted(offsets, cstop - 1, side="right")) - 1
    runs = np.array_split(np.arange(first, last + 1, dtype=np.int64),
                          max(1, n_parts))
    spans: List[Tuple[int, int]] = []
    for run in runs:
        if run.size == 0:
            continue
        a = max(cstart, int(offsets[run[0]]))
        b = min(cstop, int(offsets[run[-1]] + obj.counts[run[-1]]))
        if b > a:
            spans.append((a, b))
    return spans


class ParallelRuntime:
    """Owns the worker pool and the deterministic partition/merge logic.

    One runtime binds to one :class:`~repro.pdc.system.PDCSystem`; a
    :class:`~repro.query.executor.QueryEngine` constructed with
    ``workers=N`` creates (and owns) one.  ``min_elements=0`` forces
    every kernel through the pool — the determinism tests use it so the
    parallel path is actually exercised on small fixtures.
    """

    def __init__(self, workers: int = 0,
                 min_elements: int = DEFAULT_MIN_ELEMENTS) -> None:
        self.workers = int(workers)
        self.min_elements = int(min_elements)
        self._system = None
        self._pool = None
        self._snapshot: Dict[str, np.ndarray] = {}
        self._gen = 0
        self._stale = True
        self._broken = False
        self._closed = False
        #: Wall-clock observability: how many kernels ran where.
        self.pool_tasks = 0
        self.inline_tasks = 0
        self.refork_count = 0
        self.stale_retries = 0
        #: In-process fallbacks by reason (see :data:`FALLBACK_REASONS`).
        self.fallbacks: Dict[str, int] = {}
        self._last_fallback_reason = "serial"
        #: Optional :class:`~repro.obs.walltime.WallProfiler`.  None by
        #: default — every profiling site is one attribute test, keeping
        #: the disabled path bit-identical and effectively free.
        self.profiler = None
        self._open_dispatch = None
        # Wall-side counters live in a runtime-owned registry, *never*
        # in the system's: identity tests and the wall-clock fingerprint
        # hash ``system.metrics.render()``, which must stay bit-identical
        # across worker counts — pool bookkeeping would diverge it.
        from ..obs.metrics import MetricsRegistry

        self.wall_metrics = MetricsRegistry()
        self._m_tasks = self.wall_metrics.counter(
            "pdc_parallel_tasks_total",
            "kernel tasks dispatched to the worker pool",
        )
        self._m_fallbacks = self.wall_metrics.counter(
            "pdc_parallel_fallbacks_total",
            "kernels computed in-process instead of in the pool",
            labels=("reason",),
        )
        self._m_reforks = self.wall_metrics.counter(
            "pdc_parallel_reforks_total",
            "pool (re-)forks against a fresh data snapshot",
        )
        self._m_stale = self.wall_metrics.counter(
            "pdc_parallel_stale_reforks_total",
            "re-forks forced by a stale generation token",
        )
        self._m_ipc_bytes = self.wall_metrics.counter(
            "pdc_parallel_ipc_result_bytes_total",
            "result payload bytes shipped back across the pool IPC pipe",
        )
        _LIVE_RUNTIMES.add(self)

    # ------------------------------------------------------------ lifecycle
    @property
    def active(self) -> bool:
        """True when this runtime may dispatch to a real pool."""
        return self.workers > 1 and not self._broken and not self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    def _fallback(self, reason: str) -> None:
        self.inline_tasks += 1
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        self._m_fallbacks.labels(reason=reason).inc()

    def _pool_gate(self, n: int) -> Optional[str]:
        """Why ``n`` elements would *not* go to the pool (None = pooled)."""
        if self._closed:
            return "closed"
        if self.workers <= 1:
            return "serial"
        if self._broken:
            return "broken"
        if n < self.min_elements:
            return "min_elements"
        return None

    def bind(self, system) -> None:
        """Attach to one system: snapshot invalidation follows its
        write/failure hooks.  Re-binding to a different system raises."""
        if self._system is system:
            return
        if self._system is not None:
            raise ValueError("ParallelRuntime is already bound to a system")
        self._system = system
        system.register_invalidation_hook(self._on_invalidate)

    def _on_invalidate(self, object_name, regions=None) -> None:
        # Any write, append, or server failure may have changed object
        # data; the forked children hold copy-on-write pages from fork
        # time, so the snapshot must be re-forked before the next use.
        self._stale = True

    def invalidate(self) -> None:
        """Mark the forked snapshot stale (next parallel call re-forks)."""
        self._stale = True

    def close(self) -> None:
        """Shut down the pool and unregister from the bound system.

        Idempotent, and never fatal to callers: a closed runtime keeps
        answering kernel calls by computing in-process (counted under the
        ``closed`` fallback reason) — correctness does not depend on the
        pool's lifecycle.
        """
        self._closed = True
        self._shutdown_pool()
        if self._system is not None:
            self._system.unregister_invalidation_hook(self._on_invalidate)
            self._system = None
        _LIVE_RUNTIMES.discard(self)

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _shutdown_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            # Wait for the (idle) workers: a fire-and-forget shutdown
            # leaves the executor's management thread racing interpreter
            # exit on closed pipes.
            pool.shutdown(wait=True, cancel_futures=True)
        self._snapshot = {}
        self._stale = True

    # ------------------------------------------------------------ pool mgmt
    def _ensure_pool(self) -> bool:
        """Fork (or re-fork) the worker pool against current data.

        Returns False when a pool cannot be used; callers then run the
        identical kernels in-process.
        """
        global _WORKER_ARRAYS, _WORKER_GEN, _GEN_COUNTER, _WORKER_FORK_WALL
        if not self.active or self._system is None:
            self._last_fallback_reason = (
                "unbound" if self._system is None else "broken"
            )
            return False
        if self._pool is not None and not self._stale:
            return True
        prof = self.profiler
        t_fork0 = prof.timer() if prof is not None else 0.0
        self._shutdown_pool()
        import concurrent.futures as cf
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            self._broken = True
            self._last_fallback_reason = "no_fork"
            return False
        self._snapshot = {
            name: obj.data for name, obj in self._system.objects.items()
        }
        _GEN_COUNTER += 1
        self._gen = _GEN_COUNTER
        # Publish the snapshot for children forked from this process.
        # (The executor forks lazily on first submit, so the wall stamp
        # below dates the snapshot publish; a child's actual fork happens
        # at or after it, which is what the trace's fork bucket wants.)
        _WORKER_ARRAYS = self._snapshot
        _WORKER_GEN = self._gen
        _WORKER_FORK_WALL = time.perf_counter()
        try:
            self._pool = cf.ProcessPoolExecutor(
                max_workers=self.workers, mp_context=mp.get_context("fork")
            )
        except OSError:
            self._pool = None
            self._broken = True
            self._last_fallback_reason = "fork_failed"
            return False
        self._stale = False
        self.refork_count += 1
        self._m_reforks.inc()
        if prof is not None:
            prof.record_fork(t_fork0, prof.timer())
        return True

    def _fresh(self, obj) -> bool:
        """True when the snapshot still mirrors ``obj`` (appends replace
        the array object; in-place writes are caught by the hooks)."""
        return self._snapshot.get(obj.name) is obj.data

    def _run_tasks(self, fn, tasks: Sequence[tuple],
                   kernel: str = "task",
                   sizes: Optional[Sequence[int]] = None) -> Optional[list]:
        """Dispatch tasks to the pool; results in submission order.

        Returns None when the pool is unusable or a worker turned out to
        be forked from a stale snapshot (one re-fork is attempted first)
        — the caller then computes in-process, and
        ``_last_fallback_reason`` says why.
        """
        prof = self.profiler
        for _retry in range(2):
            if not self._ensure_pool():
                return None
            assert self._pool is not None
            if prof is not None:
                out = self._run_profiled(fn, tasks, kernel, sizes, prof)
            else:
                out = self._run_plain(fn, tasks)
            if out is None:
                if self._broken:
                    return None
                continue  # stale snapshot: loop re-forks once
            self.pool_tasks += len(tasks)
            self._m_tasks.inc(len(tasks))
            self._m_ipc_bytes.inc(sum(_result_bytes(o) for o in out))
            return out
        self._last_fallback_reason = "stale"
        return None

    def _run_plain(self, fn, tasks: Sequence[tuple]) -> Optional[list]:
        futures = [self._pool.submit(fn, self._gen, *t) for t in tasks]
        try:
            return [f.result() for f in futures]
        except _StaleWorker:
            self._stale = True
            self.stale_retries += 1
            self._m_stale.inc()
            return None
        except BaseException:
            # A dead worker (OOM kill, broken pipe) must never change
            # answers: drop the pool and compute in-process.
            self._shutdown_pool()
            self._broken = True
            self._last_fallback_reason = "worker_death"
            return None

    def _run_profiled(self, fn, tasks: Sequence[tuple], kernel: str,
                      sizes: Optional[Sequence[int]],
                      prof) -> Optional[list]:
        """The pooled dispatch with dual-clock stamping: identical task
        flow, plus per-task submit/receive stamps on the main side and
        the worker stamp buffer shipped home with each result."""
        from ..obs.walltime import TaskTrace

        disp = prof.dispatch(kernel)
        self._open_dispatch = disp
        futures = []
        for i, t in enumerate(tasks):
            t_submit = prof.timer()
            fut = self._pool.submit(_profiled_call, fn, self._gen, t)
            futures.append((fut, t_submit, i))
        disp.t_submit_end = prof.timer()
        out: list = []
        try:
            for fut, t_submit, i in futures:
                val, stamps = fut.result()
                t_recv = prof.timer()
                pid, fork_wall, t_start, t_kernel_end, t_ret, nbytes = stamps
                n = int(sizes[i]) if sizes is not None else 0
                disp.tasks.append(TaskTrace(
                    kernel=kernel, part=i, n_elements=n,
                    t_submit=t_submit, t_recv=t_recv, pid=pid,
                    gen=self._gen, fork_wall_s=fork_wall, t_start=t_start,
                    t_kernel_end=t_kernel_end, t_ret=t_ret,
                    result_bytes=nbytes,
                ))
                out.append(val)
        except _StaleWorker:
            disp.t_wait_end = disp.t_merge_end = prof.timer()
            self._open_dispatch = None
            self._stale = True
            self.stale_retries += 1
            self._m_stale.inc()
            return None
        except BaseException:
            disp.t_wait_end = disp.t_merge_end = prof.timer()
            self._open_dispatch = None
            self._shutdown_pool()
            self._broken = True
            self._last_fallback_reason = "worker_death"
            return None
        disp.t_wait_end = disp.t_merge_end = prof.timer()
        return out

    def _finish_merge(self) -> None:
        """Close the merge interval of the dispatch just returned (the
        caller concatenates partial results between wait end and here)."""
        disp, self._open_dispatch = self._open_dispatch, None
        if disp is not None and self.profiler is not None:
            disp.t_merge_end = self.profiler.timer()

    # ------------------------------------------------------------- kernels
    def mask_coords(self, obj, interval: Interval, cstart: int,
                    cstop: int) -> np.ndarray:
        """Parallel :meth:`QueryEngine._mask_coords`: hit coordinates of
        one condition within the constraint window, bit-identical to the
        serial kernel for any worker count."""
        n = cstop - cstart
        reason = self._pool_gate(n)
        if reason is None and self._fresh_or_refork(obj):
            spans = region_spans(obj, cstart, cstop, self.workers)
            tasks = [(obj.name, a, b, interval) for a, b in spans]
            sizes = [b - a for a, b in spans]
            parts = (
                self._run_tasks(_mask_span, tasks, "mask", sizes)
                if tasks else []
            )
            if parts is not None:
                out = self._concat_coords(parts)
                self._finish_merge()
                return out
            reason = self._last_fallback_reason
        self._fallback(reason)
        prof = self.profiler
        t0 = prof.timer() if prof is not None else 0.0
        window = obj.data[cstart:cstop]
        out = (
            np.flatnonzero(interval.mask(window)).astype(np.int64) + cstart
        )
        if prof is not None:
            prof.record_inline("mask", t0, prof.timer(), n)
        return out

    def filter_coords(self, obj, interval: Interval,
                      coords: np.ndarray) -> np.ndarray:
        """Parallel candidate re-check: ``coords[interval.mask(data[coords])]``
        over contiguous coordinate slices, merged in slice order."""
        reason = self._pool_gate(int(coords.size))
        if reason is None and self._fresh_or_refork(obj):
            slices = [
                s for s in np.array_split(coords, self.workers) if s.size
            ]
            tasks = [(obj.name, s, interval) for s in slices]
            sizes = [int(s.size) for s in slices]
            parts = (
                self._run_tasks(_filter_span, tasks, "filter", sizes)
                if tasks else []
            )
            if parts is not None:
                out = self._concat_coords(parts)
                self._finish_merge()
                return out
            reason = self._last_fallback_reason
        self._fallback(reason)
        prof = self.profiler
        t0 = prof.timer() if prof is not None else 0.0
        out = coords[interval.mask(obj.data[coords])]
        if prof is not None:
            prof.record_inline("filter", t0, prof.timer(), int(coords.size))
        return out

    def count_hits(self, obj, interval: Interval) -> int:
        """Parallel whole-object hit count (metadata+data queries)."""
        n = int(obj.n_elements)
        reason = self._pool_gate(n)
        if reason is None and self._fresh_or_refork(obj):
            spans = region_spans(obj, 0, n, self.workers)
            tasks = [(obj.name, a, b, interval) for a, b in spans]
            sizes = [b - a for a, b in spans]
            parts = (
                self._run_tasks(_count_span, tasks, "count", sizes)
                if tasks else []
            )
            if parts is not None:
                out = int(sum(parts))
                self._finish_merge()
                return out
            reason = self._last_fallback_reason
        self._fallback(reason)
        prof = self.profiler
        t0 = prof.timer() if prof is not None else 0.0
        out = int(interval.mask(obj.data).sum())
        if prof is not None:
            prof.record_inline("count", t0, prof.timer(), n)
        return out

    # ------------------------------------------------------------- plumbing
    def _fresh_or_refork(self, obj) -> bool:
        """Ensure the snapshot covers ``obj``'s current array; marks the
        pool stale (re-forked by ``_ensure_pool``) when it does not."""
        if self._pool is None or self._stale:
            return True  # _ensure_pool snapshots current data anyway
        if not self._fresh(obj):
            self._stale = True
        return True

    @staticmethod
    def _concat_coords(parts: List[np.ndarray]) -> np.ndarray:
        if not parts:
            return np.zeros(0, dtype=np.int64)
        if len(parts) == 1:
            return parts[0].astype(np.int64, copy=False)
        return np.concatenate(parts).astype(np.int64, copy=False)


#: Best-effort interpreter-exit cleanup for runtimes nobody closed.
_LIVE_RUNTIMES: "weakref.WeakSet[ParallelRuntime]" = weakref.WeakSet()


@atexit.register
def _close_live_runtimes() -> None:  # pragma: no cover - exit path
    for rt in list(_LIVE_RUNTIMES):
        try:
            rt.close()
        except Exception:
            pass
