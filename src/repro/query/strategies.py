"""Compatibility shim: strategies live at :mod:`repro.strategies` (they are
shared by the PDC substrate and the query engine)."""

from ..strategies import STRATEGY_ENV_VAR, Strategy, strategy_from_env

__all__ = ["STRATEGY_ENV_VAR", "Strategy", "strategy_from_env"]
