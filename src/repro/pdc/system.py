"""PDCSystem: wiring of servers, storage, metadata, objects, and replicas.

This is the deployment object a user of the library interacts with: it
owns the simulated parallel file system, the metadata service, the PDC
server fleet, and the registry of imported objects (plus their optional
bitmap indexes and sorted replicas).  The query engine
(:mod:`repro.query.executor`) operates on a system instance.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bitmap.index import RegionBitmapIndex
from ..cluster.membership import (
    CRASHED,
    GONE,
    SERVING_STATES,
    MembershipRegistry,
)
from ..errors import ObjectNotFoundError, PDCError, QueryError
from ..histogram.global_hist import GlobalHistogram
from ..histogram.mergeable import MergeableHistogram
from ..obs.metrics import REGISTRY
from ..obs.monitor import NOOP_MONITOR
from ..obs.tracer import NOOP_TRACER
from ..strategies import Strategy, strategy_from_env
from ..sorting.reorganize import SortedReplica
from ..storage.costmodel import CostModel, CostParameters, CORI_LIKE, SimClock
from ..storage.file import ParallelFileSystem
from ..types import GB, MB, pdc_type_of_dtype
from ..storage.device import DeviceKind
from .container import Container
from .metadata import ObjectMeta, TagValue
from .metaserver import MetadataService
from .region import RegionMeta, partition, region_key
from .server import PDCServer

__all__ = ["PDCConfig", "PDCSystem", "StoredObject", "ReplicaGroup"]


@dataclass(frozen=True)
class PDCConfig:
    """Deployment configuration (the paper's experimental knobs, §V)."""

    #: Number of PDC servers (one per compute node on Cori; 64 default).
    n_servers: int = 4
    #: Region size in **virtual** bytes (the paper sweeps 4–128 MB).
    region_size_bytes: int = 32 * MB
    #: Each real element stands for this many virtual elements.
    virtual_scale: float = 1.0
    #: Machine constants of the simulated testbed.
    cost_params: CostParameters = field(default_factory=lambda: CORI_LIKE)
    #: Per-server memory limit (§V: 64 GB), in virtual bytes.
    server_memory_bytes: float = 64 * GB
    #: Evaluation strategy; None resolves $PDC_QUERY_STRATEGY (default
    #: histogram-only, as in the paper).
    strategy: Optional[Strategy] = None
    #: Stripe width of PDC's internal data files (PDC distributes data
    #: across storage devices, §III-E).
    pdc_stripe_count: int = 64
    #: Stripe width of the comparison "HDF5" files (typical default
    #: striping — the source of HDF5-F's ~2x slower reads).
    hdf5_stripe_count: int = 8
    #: OST-hotspot straggler factor of the HDF5 files (§III-E: PDC's data
    #: distribution + read aggregation avoids this; plain files don't).
    hdf5_imbalance: float = 2.2
    #: Lower bound on per-region histogram bins.  0 selects the paper's
    #: adaptive rule (§III-D2: *"Depending on the region size, we use 50
    #: to 100 bins"*): 50 bins for small regions scaling to 100 for
    #: 128 MB+ regions.
    histogram_bins: int = 0
    #: FastBit binning precision (§III-D4 default: 2).
    index_precision: int = 2
    #: Gap threshold (elements) for read aggregation in get_data (§III-E).
    aggregation_gap_elements: int = 256
    #: get_data reads whole regions holding hits (block-index style, the
    #: PDC behaviour); False reads aggregated hit extents (ablation).
    get_data_whole_regions: bool = True
    #: Metadata shards; 0 means one per server.
    n_meta_shards: int = 0
    #: Placement policy used to re-assign a crashed server's region share
    #: across the survivors (see :mod:`repro.pdc.placement`).
    failover_policy: str = "round_robin"
    #: What happens to a sorted replica when a covered object is written:
    #: ``"drop"`` deletes it (the pre-ingest behaviour — a sorted copy
    #: cannot be patched in place, §III-D3), ``"mark_stale"`` keeps the
    #: files but removes the replica from planning until explicitly
    #: refreshed, ``"rebuild"`` marks stale and re-sorts automatically
    #: once :attr:`replica_rebuild_threshold` of the key is overwritten.
    replica_staleness_policy: str = "drop"
    #: Fraction of replica elements written since the last (re)build that
    #: triggers an automatic re-sort under the ``"rebuild"`` policy.
    replica_rebuild_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.replica_staleness_policy not in ("drop", "mark_stale", "rebuild"):
            raise PDCError(
                f"unknown replica_staleness_policy "
                f"{self.replica_staleness_policy!r}"
            )
        if not (0.0 < self.replica_rebuild_threshold <= 1.0):
            raise PDCError("replica_rebuild_threshold must be in (0, 1]")

    def histogram_bins_for(self, region_size_bytes: int) -> int:
        """Per-region histogram bin count: explicit, or the adaptive
        50–100 rule over the virtual region size."""
        if self.histogram_bins > 0:
            return self.histogram_bins
        span = math.log2(max(1, region_size_bytes) / (4 * MB))
        return int(min(100, max(50, 50 + 10 * span)))

    def region_elements(self, itemsize: int) -> int:
        """Real elements per region for a given element size."""
        n = int(round(self.region_size_bytes / (itemsize * self.virtual_scale)))
        if n < 1:
            raise PDCError(
                f"region_size_bytes={self.region_size_bytes} too small for "
                f"virtual_scale={self.virtual_scale} (itemsize {itemsize})"
            )
        return n


@dataclass
class StoredObject:
    """A PDC data object plus the simulator-side bookkeeping arrays."""

    meta: ObjectMeta
    #: Full payload (the real, scaled-down array).
    data: np.ndarray
    file_path: str
    hdf5_path: str
    #: Real elements per (non-tail) region.
    region_elements: int
    #: Per-region element offsets / counts, ascending.
    offsets: np.ndarray
    counts: np.ndarray
    #: Per-region true value extrema (from the region histograms).
    rmin: np.ndarray
    rmax: np.ndarray
    #: Storage tier currently holding each region's authoritative copy
    #: (§II: any layer of the memory/storage hierarchy).
    region_tier: Optional[List[str]] = None
    #: Optional per-region bitmap indexes (built by ``build_index``).
    indexes: Optional[List[RegionBitmapIndex]] = None
    #: Per-region index-file sizes / compressed word counts.
    index_nbytes: Optional[np.ndarray] = None
    index_words: Optional[np.ndarray] = None
    #: Per-region count of elements covered only by *uncompacted* WAH
    #: delta segments (continuous ingest appends deltas instead of
    #: rebuilding the bitmap; probes treat delta positions as candidates
    #: until background compaction folds them in).
    index_delta_counts: Optional[np.ndarray] = None
    #: Per-region element count overwritten since the histogram was last
    #: rebuilt from scratch (drift gauge for the delta-merge path).
    hist_dirty_elements: Optional[np.ndarray] = None

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def n_regions(self) -> int:
        return int(self.offsets.size)

    @property
    def n_elements(self) -> int:
        return int(self.data.size)

    @property
    def itemsize(self) -> int:
        return int(self.data.dtype.itemsize)

    def tier_of(self, region_id: int) -> str:
        if self.region_tier is None:
            return DeviceKind.DISK
        return self.region_tier[region_id]

    def region_of_coords(self, coords: np.ndarray) -> np.ndarray:
        """Region id of each element coordinate (uniform partitioning)."""
        return np.minimum(coords // self.region_elements, self.n_regions - 1)

    def region_bytes(self, region_ids: np.ndarray) -> np.ndarray:
        """Real payload bytes of the given regions."""
        return self.counts[region_ids] * self.itemsize


@dataclass
class ReplicaGroup:
    """A sorted replica (§III-D3) with its own region partitioning."""

    replica: SortedReplica
    key_file: str
    perm_file: str
    companion_files: Dict[str, str]
    region_elements: int
    offsets: np.ndarray
    counts: np.ndarray
    #: Per-region key-value extrema (contiguous, since the key is sorted).
    key_rmin: np.ndarray
    key_rmax: np.ndarray
    #: One-time reorganization cost in simulated seconds (sort + write).
    build_time_s: float = 0.0
    #: Under the ``"mark_stale"``/``"rebuild"`` staleness policies a
    #: written-to replica stays on disk but is skipped by planning until
    #: refreshed; ``stale_elements`` counts elements written since the
    #: last (re)build and drives the rebuild threshold.
    stale: bool = False
    stale_elements: int = 0

    @property
    def n_regions(self) -> int:
        return int(self.offsets.size)

    def regions_of_run(self, start: int, stop: int) -> np.ndarray:
        """Replica region ids overlapping sorted-position run [start, stop)."""
        if stop <= start:
            return np.zeros(0, dtype=np.int64)
        first = start // self.region_elements
        last = (stop - 1) // self.region_elements
        return np.arange(first, min(last, self.n_regions - 1) + 1, dtype=np.int64)


@dataclass
class _RegionDerived:
    """Refreshed-but-uncommitted derived state for one region (the unit
    of the write path's compute-then-commit atomicity)."""

    hist: MergeableHistogram
    rmin: float
    rmax: float
    index: Optional[RegionBitmapIndex]
    index_delta: int
    dirty_elements: int
    maint_seconds: float


def _new_write_stats() -> Dict[str, int]:
    return {
        "hist_merges": 0,
        "hist_rebuilds": 0,
        "minmax_rescans": 0,
        "index_delta_appends": 0,
        "index_rebuilds": 0,
    }


class PDCSystem:
    """One PDC deployment: servers + storage + metadata + object registry."""

    def __init__(
        self,
        config: Optional[PDCConfig] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.config = config or PDCConfig()
        if self.config.n_servers < 1:
            raise PDCError("need at least one PDC server")
        #: Observability hooks.  The default tracer is the zero-cost no-op
        #: (swap in a real one with :meth:`set_tracer`); metrics default to
        #: the process-wide registry so counters accumulate across systems
        #: unless the caller supplies an isolated registry.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics if metrics is not None else REGISTRY
        #: Continuous-telemetry monitor; the default no-op records nothing
        #: and costs one attribute read per event point (see
        #: :meth:`set_monitor`).
        self.monitor = NOOP_MONITOR
        self.cost = CostModel(
            params=self.config.cost_params, virtual_scale=self.config.virtual_scale
        )
        self.pfs = ParallelFileSystem(
            cost=self.cost,
            default_stripe_count=self.config.pdc_stripe_count,
            metrics=self.metrics,
        )
        n_shards = self.config.n_meta_shards or self.config.n_servers
        self.metadata = MetadataService(n_shards, self.pfs, self.cost)
        self.servers: List[PDCServer] = [
            PDCServer(
                i, self.cost, self.config.server_memory_bytes, metrics=self.metrics
            )
            for i in range(self.config.n_servers)
        ]
        for s in self.servers:
            s.tracer = self.tracer
            s.monitor = self.monitor
        self.client_clock = SimClock("client")
        self._failed_servers: set = set()
        #: Servers not receiving region routing: joining ∪ crashed ∪ gone
        #: (``_failed_servers`` stays the crashed subset — the executor's
        #: failover path reads it directly).
        self._inactive_servers: set = set()
        self._gone_servers: set = set()
        #: Committed non-canonical placement (:class:`PlacementMap`), or
        #: ``None`` for the canonical modulo-over-alive routing — the fast
        #: path every pre-cluster deployment stays on.
        self._placement = None
        #: Membership registry: every server lifecycle change (including
        #: :meth:`fail_server`) is one of its transitions.
        self.membership = MembershipRegistry(range(self.config.n_servers))
        self.membership.subscribe(self._on_membership_event)
        self._cluster_events_metric = None
        #: Deterministic fault plan (:mod:`repro.faults`); None = no faults.
        self.fault_plan = None
        self.containers: Dict[str, Container] = {"default": Container("default")}
        self.objects: Dict[str, StoredObject] = {}
        #: sort-key object name → replica group.
        self.replicas: Dict[str, ReplicaGroup] = {}
        #: Listeners notified when derived query state for an object goes
        #: stale: called with the object name after a region rewrite, with
        #: ``None`` after a server failure (conservative whole-system
        #: signal).  Registered by semantic selection caches.
        self._invalidation_hooks: List = []
        #: Subset of hooks that accept ``(name, regions)`` (decided at
        #: registration time by signature introspection).
        self._region_aware_hooks: List = []
        #: Maintenance counters of the most recent write-path call
        #: (:meth:`update_object_region` / :meth:`append_to_object`);
        #: the ingest stream aggregates these into epoch results.
        self.last_write_stats: Dict[str, int] = {}

    # ----------------------------------------------------------------- config
    @property
    def n_servers(self) -> int:
        """Provisioned (non-retired) server count.  Crashed servers still
        count — the pre-cluster fleet size semantics — while servers that
        completed a drain-and-leave are excluded, so after a scale-in the
        count matches a static cluster of the final view."""
        return len(self.servers) - len(self._gone_servers)

    @property
    def strategy(self) -> Strategy:
        if self.config.strategy is not None:
            return self.config.strategy
        return strategy_from_env()

    def all_clocks(self) -> List[SimClock]:
        return [s.clock for s in self.servers] + [self.client_clock]

    def sync_clocks(self) -> float:
        """Bulk-synchronous barrier across servers and client; returns the
        barrier instant."""
        t = max(c.now for c in self.all_clocks())
        for c in self.all_clocks():
            c.advance_to(t)
        return t

    def server_of_region(self, region_id: int) -> int:
        """Stable region→server mapping (load-balanced for equal-size
        regions, and cache-friendly across a query sequence).  Routes
        around failed servers; honours a committed rebalanced placement
        when one exists."""
        if self._placement is not None:
            return self._placement.owner_of(region_id)
        alive = self.alive_servers
        return alive[region_id % len(alive)].server_id

    def region_owner_positions(self, region_ids: np.ndarray) -> np.ndarray:
        """Vectorized routing: each region's owner as a *position* into
        :attr:`alive_servers` (the shape the executor's assignment and
        charge sites consume).  On the canonical placement this is
        exactly ``region_ids % len(alive_servers)`` — bit-identical to
        the pre-cluster modulo routing."""
        ids = np.asarray(region_ids, dtype=np.int64)
        alive = self.alive_servers
        if self._placement is None:
            return ids % len(alive)
        return self._placement.positions(ids, [s.server_id for s in alive])

    def placement_map(self):
        """The committed placement as an explicit map (the canonical map
        of the current serving set when the fast path is active)."""
        from ..cluster.rebalance import PlacementMap

        if self._placement is not None:
            return self._placement
        return PlacementMap.canonical([s.server_id for s in self.alive_servers])

    def set_placement(self, placement) -> None:
        """Commit a placement map.  A canonical map (or ``None``) drops
        back to the modulo fast path.  Selection caches are invalidated
        conservatively — routing changed, so cached per-server cost state
        is stale even though answers are placement-independent."""
        alive_ids = [s.server_id for s in self.alive_servers]
        if placement is None or placement.is_canonical_for(alive_ids):
            self._placement = None
        else:
            self._placement = placement
        self._notify_invalidation(None)

    # ------------------------------------------------------------- membership
    @property
    def alive_servers(self) -> List[PDCServer]:
        """Servers currently in service, ascending by id (live and
        draining members; joining, crashed, and retired servers are
        excluded from routing)."""
        return [s for s in self.servers if s.server_id not in self._inactive_servers]

    def add_server(self) -> int:
        """Provision one new server in the JOINING state: its clock runs
        from the current frontier but it serves no regions until a
        rebalance commit activates it.  Returns the new server id."""
        t = max(c.now for c in self.all_clocks())
        sid = len(self.servers)
        server = PDCServer(
            sid, self.cost, self.config.server_memory_bytes, metrics=self.metrics
        )
        server.tracer = self.tracer
        server.monitor = self.monitor
        server.fault_plan = self.fault_plan
        server.clock.advance_to(t)
        self.servers.append(server)
        self.membership.join(t, sid)
        return sid

    def drain_server(self, server_id: int) -> None:
        """Begin decommissioning: the server keeps serving its share
        until a rebalance commit migrates it away and retires it."""
        t = max(c.now for c in self.all_clocks())
        self.membership.drain(t, server_id)

    def retire_server(self, server_id: int) -> None:
        """Retire a drained (or never-activated joining) server."""
        t = max(c.now for c in self.all_clocks())
        self.membership.leave(t, server_id)

    def _on_membership_event(self, event) -> None:
        """The single code path every membership change funnels through:
        routing-set maintenance, cache drops, placement repair, and
        observability all happen here whether the trigger was
        ``fail_server``, a lease expiry, or a scaling migration."""
        sid = event.server_id
        kind = event.kind
        if kind == "join":
            self._inactive_servers.add(sid)
        elif kind == "activate":
            self._inactive_servers.discard(sid)
        elif kind in ("crash", "lease_expire"):
            self._failed_servers.add(sid)
            self._inactive_servers.add(sid)
            self.servers[sid].drop_caches()
            if self._placement is not None:
                alive_ids = [s.server_id for s in self.alive_servers]
                repaired = self._placement.repair(sid, alive_ids)
                self._placement = (
                    None if repaired.is_canonical_for(alive_ids) else repaired
                )
            self._notify_invalidation(None)
        elif kind == "recover":
            self._failed_servers.discard(sid)
            self._inactive_servers.discard(sid)
            t = max(c.now for c in self.all_clocks())
            self.servers[sid].clock.advance_to(t)
        elif kind == "leave":
            self._inactive_servers.add(sid)
            self._gone_servers.add(sid)
            self.servers[sid].drop_caches()
        if self._cluster_events_metric is None:
            # Lazily declared so a deployment with no membership events
            # renders exactly the pre-cluster metric families.
            self._cluster_events_metric = self.metrics.counter(
                "pdc_cluster_membership_total",
                "Cluster membership transitions by kind.",
                labels=("kind",),
            )
        self._cluster_events_metric.labels(kind=kind).inc()
        self.metadata.record_view(event.t_s, self.membership.view())
        if self.monitor.enabled:
            self.monitor.on_membership(
                t_s=event.t_s,
                server_id=sid,
                kind=kind,
                state=event.state,
                generation=event.generation,
                n_serving=len(self.membership.serving_ids),
            )

    # ------------------------------------------------------------- failures
    def fail_server(self, server_id: int) -> None:
        """Take a server out of service (crash simulation).

        Its cached regions are lost; region assignments reroute to the
        survivors.  Queries keep working because region payloads live on
        the PFS and metadata is re-distributed on demand.  At least one
        server must survive.  This is the membership registry's ``crash``
        transition — failover, cache invalidation, placement repair, and
        monitor series all observe the one event stream.
        """
        if not self.membership.knows(server_id) or (
            self.membership.state(server_id) == GONE
        ):
            raise PDCError(f"no server {server_id}")
        state = self.membership.state(server_id)
        if state == CRASHED:
            # Idempotent re-crash (pre-membership behaviour): re-drop the
            # caches and re-signal invalidation, no new event.
            self.servers[server_id].drop_caches()
            self._notify_invalidation(None)
            return
        if state in SERVING_STATES and len(self.alive_servers) <= 1:
            raise PDCError("cannot fail the last alive server")
        t = max(c.now for c in self.all_clocks())
        self.membership.crash(t, server_id)

    def register_invalidation_hook(self, hook) -> None:
        """Subscribe ``hook(object_name_or_None)`` to staleness events:
        it is called with the object name after a region rewrite and with
        ``None`` after a server failure.

        Hooks that accept a second positional argument additionally
        receive the affected region ids (a list, or ``None`` for a
        whole-object/whole-system signal), enabling region-granular
        cache maintenance; single-argument hooks keep working unchanged.
        """
        if hook not in self._invalidation_hooks:
            self._invalidation_hooks.append(hook)
            if self._hook_accepts_regions(hook):
                self._region_aware_hooks.append(hook)

    def unregister_invalidation_hook(self, hook) -> None:
        if hook in self._invalidation_hooks:
            self._invalidation_hooks.remove(hook)
        if hook in self._region_aware_hooks:
            self._region_aware_hooks.remove(hook)

    @staticmethod
    def _hook_accepts_regions(hook) -> bool:
        """Whether ``hook`` can take ``(name, regions)`` — decided once at
        registration so notification never misroutes a hook's own
        ``TypeError``."""
        try:
            sig = inspect.signature(hook)
        except (TypeError, ValueError):  # pragma: no cover - builtins
            return False
        params = list(sig.parameters.values())
        if any(p.kind == p.VAR_POSITIONAL for p in params):
            return True
        positional = [
            p
            for p in params
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        return len(positional) >= 2

    def _notify_invalidation(self, name, regions=None) -> None:
        for hook in list(self._invalidation_hooks):
            if hook in self._region_aware_hooks:
                hook(name, regions)
            else:
                hook(name)

    def recover_server(self, server_id: int) -> None:
        """Bring a failed server back (cold caches, clock rejoins at the
        current simulated time) — the registry's ``recover`` transition."""
        if (
            not self.membership.knows(server_id)
            or self.membership.state(server_id) != CRASHED
        ):
            raise PDCError(f"server {server_id} is not failed")
        t = max(c.now for c in self.all_clocks())
        self.membership.recover(t, server_id)

    # ------------------------------------------------------------- containers
    def create_container(self, name: str, tags: Optional[Dict[str, TagValue]] = None) -> Container:
        if name in self.containers:
            raise PDCError(f"container {name!r} exists")
        cont = Container(name, tags or {})
        self.containers[name] = cont
        return cont

    # ---------------------------------------------------------------- objects
    def create_object(
        self,
        name: str,
        data: np.ndarray,
        tags: Optional[Dict[str, TagValue]] = None,
        container: str = "default",
        build_histograms: bool = True,
    ) -> StoredObject:
        """Import a 1-D array as a PDC object.

        Partitions into regions, writes the PDC data file (wide-striped)
        and the comparison "HDF5" file (default-striped, sharing the same
        payload array — no copy), builds per-region mergeable histograms and
        the merged global histogram (§III-D2: generated automatically when
        data is produced or imported), and registers metadata.
        """
        if name in self.objects:
            raise PDCError(f"object {name!r} exists")
        data = np.ascontiguousarray(data)
        if data.size == 0:
            raise PDCError("objects must be non-empty arrays")
        dims: Optional[Tuple[int, ...]] = None
        if data.ndim > 1:
            # Multi-dimensional arrays are stored flattened in C order;
            # the logical shape lives in the metadata (pdc_region_t
            # addressing resolves against it).
            dims = tuple(int(d) for d in data.shape)
            data = data.reshape(-1)
        pdc_type = pdc_type_of_dtype(data.dtype)
        region_elems = self.config.region_elements(data.dtype.itemsize)
        extents = partition(data.size, region_elems)
        file_path = f"/pdc/data/{name}"
        hdf5_path = f"/hdf5/{name}.h5"
        self.pfs.create(file_path, data, stripe_count=self.config.pdc_stripe_count)
        self.pfs.create(
            hdf5_path,
            data,
            stripe_count=self.config.hdf5_stripe_count,
            imbalance=self.config.hdf5_imbalance,
        )

        oid = self.metadata.allocate_object_id()
        regions: List[RegionMeta] = []
        rmin = np.empty(len(extents))
        rmax = np.empty(len(extents))
        hist_by_region: Dict[int, MergeableHistogram] = {}
        n_bins = self.config.histogram_bins_for(self.config.region_size_bytes)
        for rid, (off, count) in enumerate(extents):
            hist = None
            if build_histograms:
                hist = MergeableHistogram.from_data(
                    data[off : off + count],
                    n_bins=n_bins,
                    seed=(oid * 100003 + rid) & 0x7FFFFFFF,
                )
                hist_by_region[rid] = hist
                rmin[rid], rmax[rid] = hist.data_min, hist.data_max
            else:
                seg = data[off : off + count]
                rmin[rid], rmax[rid] = float(seg.min()), float(seg.max())
            regions.append(
                RegionMeta(
                    region_id=rid,
                    object_name=name,
                    offset=off,
                    n_elements=count,
                    file_path=file_path,
                    histogram=hist,
                )
            )

        global_hist = GlobalHistogram.build(hist_by_region) if hist_by_region else None
        meta = ObjectMeta(
            name=name,
            object_id=oid,
            pdc_type=pdc_type,
            n_elements=int(data.size),
            dims=dims,
            container=container,
            tags=dict(tags or {}),
            regions=regions,
            global_histogram=global_hist,
            created_at=self.metadata.tick(),
        )
        self.metadata.create(meta)
        if container not in self.containers:
            self.create_container(container)
        self.containers[container].add(name)

        obj = StoredObject(
            meta=meta,
            data=data,
            file_path=file_path,
            hdf5_path=hdf5_path,
            region_elements=region_elems,
            offsets=np.array([e[0] for e in extents], dtype=np.int64),
            counts=np.array([e[1] for e in extents], dtype=np.int64),
            rmin=rmin,
            rmax=rmax,
            region_tier=[DeviceKind.DISK] * len(extents),
        )
        self.objects[name] = obj
        return obj

    def update_object_region(
        self,
        name: str,
        offset: int,
        values: np.ndarray,
        maintenance: str = "rebuild",
        rebuild_fraction: float = 0.5,
    ) -> List[int]:
        """Overwrite part of an object and maintain all derived state.

        Scientific data is mostly write-once-read-many (§III-D4), but PDC
        supports updates; this keeps the query structures *consistent*
        when they happen:

        * affected regions' histograms and min/max are refreshed — rebuilt
          from scratch (``maintenance="rebuild"``, the default), or
          incrementally via exact same-grid subtract/merge of the write's
          delta histograms (``"delta"``, Algorithm 1 merges as the delta
          unit) with a from-scratch rebuild once ``rebuild_fraction`` of
          the region has been overwritten since the last rebuild;
        * the global histogram is re-merged;
        * affected regions' bitmap indexes are rebuilt (rebuild mode) or
          extended with WAH delta segments (delta mode; probes treat
          delta positions as candidates until compaction);
        * sorted replicas covering the object follow
          :attr:`PDCConfig.replica_staleness_policy` (drop / mark-stale /
          rebuild-on-threshold), and their cached sorted-region bytes are
          invalidated on every server regardless of policy;
        * stale cache entries on every server are invalidated.

        The refresh is atomic: derived state is computed for every
        affected region before any of it is committed or charged, and on
        failure the payload write itself is rolled back — a mid-loop
        error can no longer leave clocks charged for writes whose derived
        state was never refreshed.

        Returns the affected region ids.  Write time is charged to the
        owning servers' clocks; delta-maintenance work is charged under
        ``"ingest_maint"``.
        """
        if maintenance not in ("rebuild", "delta"):
            raise PDCError(f"unknown maintenance mode {maintenance!r}")
        obj = self.get_object(name)
        values = np.ascontiguousarray(values, dtype=obj.data.dtype)
        if values.ndim != 1 or values.size == 0:
            raise PDCError("update payload must be non-empty 1-D")
        stop = offset + values.size
        if offset < 0 or stop > obj.n_elements:
            raise PDCError(
                f"update [{offset}, {stop}) out of bounds for {name!r} "
                f"({obj.n_elements} elements)"
            )
        stats = _new_write_stats()
        # Write through (obj.data is the same array the PFS file holds),
        # keeping the overwritten payload for rollback and for the delta
        # path's exact subtraction.
        old = obj.data[offset:stop].copy()
        obj.data[offset:stop] = values
        first = offset // obj.region_elements
        last = (stop - 1) // obj.region_elements
        affected = list(range(first, min(last, obj.n_regions - 1) + 1))

        try:
            refreshed = [
                self._refresh_region_derived(
                    obj, rid, offset, old, maintenance, rebuild_fraction, stats
                )
                for rid in affected
            ]
        except Exception:
            # Atomic failure path: restore the payload so data and the
            # (untouched) derived state agree again, conservatively
            # invalidate caches, and charge nothing.
            obj.data[offset:stop] = old
            self._invalidate_region_caches(name, affected)
            self._notify_invalidation(name, affected)
            raise

        for rid, derived in zip(affected, refreshed):
            self._commit_region_derived(obj, rid, derived)
            self._invalidate_region_caches(name, [rid])
            count = int(obj.counts[rid])
            server = self.servers[self.server_of_region(rid)]
            server.clock.charge(
                self.cost.pfs_write_time(
                    count * obj.itemsize, 1, self.config.pdc_stripe_count
                ),
                "pfs_write",
            )

        self.remerge_global_histogram(name)
        if any(d.index is not None for d in refreshed):
            self._rewrite_index_file(obj)
        self._handle_replica_staleness(name, values.size, stats)
        self.last_write_stats = stats
        self._notify_invalidation(name, affected)
        return affected

    def append_to_object(
        self,
        name: str,
        values: np.ndarray,
        maintenance: str = "rebuild",
        rebuild_fraction: float = 0.5,
    ) -> List[int]:
        """Grow a 1-D object at the tail and maintain all derived state.

        The tail region absorbs elements up to the region size; further
        elements open new regions (with fresh histograms and — when the
        object is indexed — fresh bitmap indexes).  Under
        ``maintenance="delta"`` the grown tail's histogram is updated by
        an exact Algorithm 1 merge of the appended elements' delta
        histogram and its bitmap gains a WAH delta segment instead of a
        rebuild.  Returns the affected region ids (grown tail + new
        regions).
        """
        if maintenance not in ("rebuild", "delta"):
            raise PDCError(f"unknown maintenance mode {maintenance!r}")
        obj = self.get_object(name)
        if obj.meta.dims is not None:
            raise PDCError("append only supports 1-D objects")
        values = np.ascontiguousarray(values, dtype=obj.data.dtype)
        if values.ndim != 1 or values.size == 0:
            raise PDCError("append payload must be non-empty 1-D")
        stats = _new_write_stats()
        old_n = obj.n_elements
        old_n_regions = obj.n_regions
        old_tail_count = int(obj.counts[old_n_regions - 1])

        data = np.concatenate([obj.data, values])
        extents = partition(data.size, obj.region_elements)
        # The PFS files hold the payload array itself: recreate them so
        # reads resolve against the grown array.
        for path, stripe, imbalance in (
            (obj.file_path, self.config.pdc_stripe_count, 1.0),
            (obj.hdf5_path, self.config.hdf5_stripe_count, self.config.hdf5_imbalance),
        ):
            if self.pfs.exists(path):
                self.pfs.delete(path)
            self.pfs.create(path, data, stripe_count=stripe, imbalance=imbalance)
        obj.data = data
        obj.meta.n_elements = int(data.size)
        obj.offsets = np.array([e[0] for e in extents], dtype=np.int64)
        obj.counts = np.array([e[1] for e in extents], dtype=np.int64)
        n_regions = len(extents)
        grow = n_regions - old_n_regions
        if grow:
            pad = np.zeros(grow)
            obj.rmin = np.concatenate([obj.rmin, pad])
            obj.rmax = np.concatenate([obj.rmax, pad])
            if obj.region_tier is not None:
                obj.region_tier.extend([DeviceKind.DISK] * grow)
            for arr_name in ("index_nbytes", "index_words", "index_delta_counts",
                             "hist_dirty_elements"):
                arr = getattr(obj, arr_name)
                if arr is not None:
                    setattr(obj, arr_name, np.concatenate(
                        [arr, np.zeros(grow, dtype=np.int64)]))

        affected: List[int] = []
        tail = old_n_regions - 1
        tail_grew = int(obj.counts[tail]) > old_tail_count
        if tail_grew:
            affected.append(tail)
            self._refresh_appended_tail(obj, tail, old_n, maintenance, stats)
        for rid in range(old_n_regions, n_regions):
            affected.append(rid)
            self._create_appended_region(obj, rid, maintenance, stats)

        for rid in affected:
            self._invalidate_region_caches(name, [rid])
            count = int(obj.counts[rid])
            server = self.servers[self.server_of_region(rid)]
            server.clock.charge(
                self.cost.pfs_write_time(
                    count * obj.itemsize, 1, self.config.pdc_stripe_count
                ),
                "pfs_write",
            )

        self.remerge_global_histogram(name)
        if obj.indexes is not None:
            self._rewrite_index_file(obj)
        self._handle_replica_staleness(name, values.size, stats)
        self.last_write_stats = stats
        self._notify_invalidation(name, affected)
        return affected

    # ------------------------------------------------------ write-path helpers
    def _refresh_region_derived(
        self,
        obj: StoredObject,
        rid: int,
        w_off: int,
        old: np.ndarray,
        maintenance: str,
        rebuild_fraction: float,
        stats: Dict[str, int],
    ) -> "_RegionDerived":
        """Compute (without committing) a region's refreshed derived
        state after an overwrite of ``[w_off, w_off + old.size)``."""
        roff, count = int(obj.offsets[rid]), int(obj.counts[rid])
        segment = obj.data[roff : roff + count]
        lo = max(w_off, roff)
        hi = min(w_off + old.size, roff + count)
        span = hi - lo
        h = obj.meta.regions[rid].histogram
        prev_dirty = 0
        if obj.hist_dirty_elements is not None:
            prev_dirty = int(obj.hist_dirty_elements[rid])
        dirty = prev_dirty + span
        maint = 0.0
        use_delta = (
            maintenance == "delta"
            and h is not None
            and dirty < rebuild_fraction * count
        )
        if use_delta:
            old_span = old[lo - w_off : hi - w_off].astype(np.float64, copy=False)
            new_span = segment[lo - roff : hi - roff].astype(np.float64, copy=False)
            # Exact extrema: a removal can only disturb an extremum when
            # an overwritten value attains it; then a charged region
            # rescan recovers the truth.
            if (
                float(old_span.min()) <= h.data_min
                or float(old_span.max()) >= h.data_max
            ):
                new_min = float(segment.min())
                new_max = float(segment.max())
                maint += self.cost.scan_time(count)
                stats["minmax_rescans"] += 1
            else:
                new_min = min(h.data_min, float(new_span.min()))
                new_max = max(h.data_max, float(new_span.max()))
            delta_old = MergeableHistogram.from_data_width(old_span, h.bin_width)
            delta_new = MergeableHistogram.from_data_width(new_span, h.bin_width)
            hist = h.subtract(
                delta_old, data_min=new_min, data_max=new_max
            ).merge(delta_new)
            maint += self.cost.scan_time(2 * span)
            stats["hist_merges"] += 1
            new_dirty = dirty
        else:
            hist = MergeableHistogram.from_data(
                segment,
                n_bins=self.config.histogram_bins_for(self.config.region_size_bytes),
                seed=(obj.meta.object_id * 100003 + rid) & 0x7FFFFFFF,
            )
            if maintenance == "delta":
                maint += self.cost.scan_time(count)
            stats["hist_rebuilds"] += 1
            new_dirty = 0

        index = None
        index_delta = 0
        if obj.indexes is not None:
            if use_delta:
                index_delta = span
                maint += self.cost.scan_time(span)
                stats["index_delta_appends"] += 1
            else:
                index = RegionBitmapIndex.build(
                    segment, precision=self.config.index_precision
                )
                stats["index_rebuilds"] += 1
        return _RegionDerived(
            hist=hist,
            rmin=hist.data_min,
            rmax=hist.data_max,
            index=index,
            index_delta=index_delta,
            dirty_elements=new_dirty,
            maint_seconds=maint,
        )

    def _commit_region_derived(
        self, obj: StoredObject, rid: int, derived: "_RegionDerived"
    ) -> None:
        obj.meta.regions[rid].histogram = derived.hist
        obj.rmin[rid], obj.rmax[rid] = derived.rmin, derived.rmax
        if obj.hist_dirty_elements is None and derived.dirty_elements:
            obj.hist_dirty_elements = np.zeros(obj.n_regions, dtype=np.int64)
        if obj.hist_dirty_elements is not None:
            obj.hist_dirty_elements[rid] = derived.dirty_elements
        if derived.index is not None:
            obj.indexes[rid] = derived.index
            obj.index_nbytes[rid] = derived.index.nbytes
            obj.index_words[rid] = derived.index.total_words()
            if obj.index_delta_counts is not None:
                obj.index_delta_counts[rid] = 0
        elif derived.index_delta:
            if obj.index_delta_counts is None:
                obj.index_delta_counts = np.zeros(obj.n_regions, dtype=np.int64)
            obj.index_delta_counts[rid] += derived.index_delta
        if derived.maint_seconds > 0.0:
            server = self.servers[self.server_of_region(rid)]
            server.clock.charge(derived.maint_seconds, "ingest_maint")

    def _refresh_appended_tail(
        self,
        obj: StoredObject,
        rid: int,
        old_n: int,
        maintenance: str,
        stats: Dict[str, int],
    ) -> None:
        """Refresh the grown tail region after an append: a pure exact
        merge in delta mode (appends remove nothing), a rebuild
        otherwise."""
        roff, count = int(obj.offsets[rid]), int(obj.counts[rid])
        segment = obj.data[roff : roff + count]
        appended = segment[old_n - roff :]
        h = obj.meta.regions[rid].histogram
        if maintenance == "delta" and h is not None:
            delta = MergeableHistogram.from_data_width(
                appended.astype(np.float64, copy=False), h.bin_width
            )
            hist = h.merge(delta)
            server = self.servers[self.server_of_region(rid)]
            server.clock.charge(
                self.cost.scan_time(int(appended.size)), "ingest_maint"
            )
            stats["hist_merges"] += 1
            if obj.indexes is not None:
                if obj.index_delta_counts is None:
                    obj.index_delta_counts = np.zeros(obj.n_regions, dtype=np.int64)
                obj.index_delta_counts[rid] += int(appended.size)
                server.clock.charge(
                    self.cost.scan_time(int(appended.size)), "ingest_maint"
                )
                stats["index_delta_appends"] += 1
        else:
            hist = MergeableHistogram.from_data(
                segment,
                n_bins=self.config.histogram_bins_for(self.config.region_size_bytes),
                seed=(obj.meta.object_id * 100003 + rid) & 0x7FFFFFFF,
            )
            stats["hist_rebuilds"] += 1
            if obj.indexes is not None:
                idx = RegionBitmapIndex.build(
                    segment, precision=self.config.index_precision
                )
                obj.indexes[rid] = idx
                obj.index_nbytes[rid] = idx.nbytes
                obj.index_words[rid] = idx.total_words()
                if obj.index_delta_counts is not None:
                    obj.index_delta_counts[rid] = 0
                stats["index_rebuilds"] += 1
        obj.meta.regions[rid].histogram = hist
        obj.meta.regions[rid].n_elements = count
        obj.rmin[rid], obj.rmax[rid] = hist.data_min, hist.data_max

    def _create_appended_region(
        self, obj: StoredObject, rid: int, maintenance: str, stats: Dict[str, int]
    ) -> None:
        """Materialize a brand-new region opened by an append (exact
        histogram and index in either mode — there is nothing to patch)."""
        roff, count = int(obj.offsets[rid]), int(obj.counts[rid])
        segment = obj.data[roff : roff + count]
        hist = MergeableHistogram.from_data(
            segment,
            n_bins=self.config.histogram_bins_for(self.config.region_size_bytes),
            seed=(obj.meta.object_id * 100003 + rid) & 0x7FFFFFFF,
        )
        stats["hist_rebuilds"] += 1
        obj.meta.regions.append(
            RegionMeta(
                region_id=rid,
                object_name=obj.name,
                offset=roff,
                n_elements=count,
                file_path=obj.file_path,
                histogram=hist,
            )
        )
        obj.rmin[rid], obj.rmax[rid] = hist.data_min, hist.data_max
        if maintenance == "delta":
            server = self.servers[self.server_of_region(rid)]
            server.clock.charge(self.cost.scan_time(count), "ingest_maint")
        if obj.indexes is not None:
            idx = RegionBitmapIndex.build(
                segment, precision=self.config.index_precision
            )
            obj.indexes.append(idx)
            obj.index_nbytes[rid] = idx.nbytes
            obj.index_words[rid] = idx.total_words()
            obj.meta.regions[rid].index_path = f"/pdc/index/{obj.name}"
            stats["index_rebuilds"] += 1

    def _invalidate_region_caches(self, name: str, region_ids: Sequence[int]) -> None:
        for server in self.servers:
            for rid in region_ids:
                server.cache.invalidate(region_key(name, rid))
                server.cache.invalidate(region_key(name, rid, replica="idx"))

    def remerge_global_histogram(self, name: str) -> None:
        """Re-merge an object's global histogram from its (refreshed)
        region histograms (no-op for histogram-less objects)."""
        obj = self.get_object(name)
        if obj.meta.global_histogram is not None:
            obj.meta.global_histogram = GlobalHistogram.build(
                {r.region_id: r.histogram for r in obj.meta.regions if r.histogram}
            )

    def _rewrite_index_file(self, obj: StoredObject) -> None:
        if obj.indexes is None:
            return
        path = f"/pdc/index/{obj.name}"
        if self.pfs.exists(path):
            self.pfs.delete(path)
        self.pfs.create(
            path,
            np.concatenate([idx.to_bytes() for idx in obj.indexes]),
            stripe_count=self.config.pdc_stripe_count,
        )

    def _invalidate_replica_caches(self, key_name: str, group: ReplicaGroup) -> None:
        """Invalidate every server's cached sorted-replica bytes for one
        replica group — on *any* write to a covered object, regardless of
        staleness policy, so a cached sorted read can never serve
        pre-update bytes."""
        for server in self.servers:
            for rid in range(group.n_regions):
                for which in ("key", "perm", *group.companion_files):
                    server.cache.invalidate(
                        region_key(key_name, rid, replica=f"sorted:{which}")
                    )

    def _handle_replica_staleness(
        self, name: str, n_written: int, stats: Dict[str, int]
    ) -> None:
        """Apply :attr:`PDCConfig.replica_staleness_policy` to every
        sorted replica covering a just-written object."""
        policy = self.config.replica_staleness_policy
        counter = self.metrics.counter(
            "pdc_replica_staleness_total",
            "Sorted-replica staleness actions taken on object writes",
            labels=("action",),
        )
        for key_name in list(self.replicas):
            group = self.replicas[key_name]
            covered = {key_name, *group.replica.companions}
            if name not in covered:
                continue
            self._invalidate_replica_caches(key_name, group)
            if policy == "drop":
                self.drop_sorted_replica(key_name)
                action = "drop"
            else:
                group.stale = True
                group.stale_elements += int(n_written)
                action = "mark_stale"
                if (
                    policy == "rebuild"
                    and group.stale_elements
                    >= self.config.replica_rebuild_threshold
                    * group.replica.n_elements
                    # The replica zips key and companions positionally,
                    # so a rebuild must wait out uneven growth (e.g. the
                    # key appended, its companion not yet): stay stale
                    # until every covered object is the same length
                    # again — the next covered write re-checks.
                    and all(
                        self.objects[c].n_elements
                        == self.objects[key_name].n_elements
                        for c in group.replica.companions
                        if c in self.objects
                    )
                ):
                    self.refresh_sorted_replica(key_name)
                    action = "rebuild"
            counter.labels(action=action).inc()
            stats[f"replica_{action}"] = stats.get(f"replica_{action}", 0) + 1

    def refresh_sorted_replica(self, key_name: str) -> ReplicaGroup:
        """Re-sort a stale replica from the objects' current payloads.

        The rebuild cost (sort + parallel write, the same formula as the
        initial build) is charged to every alive server under
        ``"replica_rebuild"`` — unlike the initial build, refreshes
        happen *during* service and compete with queries for simulated
        time.
        """
        group = self.replicas.get(key_name)
        if group is None:
            raise PDCError(f"no sorted replica keyed by {key_name!r}")
        companions = tuple(group.replica.companions)
        self.drop_sorted_replica(key_name)
        new = self.build_sorted_replica(key_name, companions)
        for s in self.alive_servers:
            s.clock.charge(new.build_time_s, "replica_rebuild")
        return new

    def compact_region_index(
        self, name: str, rid: int, rewrite_file: bool = True
    ) -> int:
        """Fold a region's WAH delta segments into a freshly built bitmap
        (background compaction).  Charges a region scan plus the index
        write to the owning server under ``"compaction"``; returns the
        number of delta elements folded in."""
        obj = self.get_object(name)
        if obj.indexes is None:
            raise QueryError(f"object {name!r} has no index")
        rid = int(rid)
        if not (0 <= rid < obj.n_regions):
            raise PDCError(f"object {name!r} has no region {rid}")
        roff, count = int(obj.offsets[rid]), int(obj.counts[rid])
        idx = RegionBitmapIndex.build(
            obj.data[roff : roff + count], precision=self.config.index_precision
        )
        obj.indexes[rid] = idx
        obj.index_nbytes[rid] = idx.nbytes
        obj.index_words[rid] = idx.total_words()
        n_delta = 0
        if obj.index_delta_counts is not None:
            n_delta = int(obj.index_delta_counts[rid])
            obj.index_delta_counts[rid] = 0
        server = self.servers[self.server_of_region(rid)]
        server.clock.charge(
            self.cost.scan_time(count)
            + self.cost.pfs_write_time(
                int(idx.nbytes), 1, self.config.pdc_stripe_count
            ),
            "compaction",
        )
        for s in self.servers:
            s.cache.invalidate(region_key(name, rid, replica="idx"))
        if rewrite_file:
            self._rewrite_index_file(obj)
        return n_delta

    def migrate_regions(
        self, name: str, region_ids: Sequence[int], tier: str
    ) -> None:
        """Move regions' authoritative copies to another hierarchy layer
        (§II: PDC moves data transparently across the deep memory
        hierarchy).  Charges read-from-current + write-to-target on the
        owning servers; subsequent reads of those regions use the new
        tier's performance."""
        if tier not in DeviceKind.ORDER:
            raise PDCError(f"unknown storage tier {tier!r}")
        obj = self.get_object(name)
        for rid in region_ids:
            rid = int(rid)
            if not (0 <= rid < obj.n_regions):
                raise PDCError(f"object {name!r} has no region {rid}")
            current = obj.tier_of(rid)
            if current == tier:
                continue
            nbytes = int(obj.counts[rid]) * obj.itemsize
            server = self.servers[self.server_of_region(rid)]
            server.clock.charge(
                self.cost.tier_read_time(
                    nbytes, 1, current, self.config.pdc_stripe_count
                )
                + self.cost.tier_read_time(
                    nbytes, 1, tier, self.config.pdc_stripe_count
                ) / 0.8,
                "migrate",
            )
            obj.region_tier[rid] = tier
            obj.meta.regions[rid].tier = tier

    def drop_sorted_replica(self, key_name: str) -> None:
        """Remove a sorted replica and its files/caches."""
        group = self.replicas.pop(key_name, None)
        if group is None:
            return
        for path in (group.key_file, group.perm_file, *group.companion_files.values()):
            if self.pfs.exists(path):
                self.pfs.delete(path)
        for server in self.servers:
            for rid in range(group.n_regions):
                for which in ("key", "perm", *group.companion_files):
                    server.cache.invalidate(
                        region_key(key_name, rid, replica=f"sorted:{which}")
                    )
        for obj in self.objects.values():
            if obj.meta.sorted_by == key_name:
                obj.meta.sorted_by = None

    def get_object(self, name: str) -> StoredObject:
        try:
            return self.objects[name]
        except KeyError:
            raise ObjectNotFoundError(f"no object named {name!r}") from None

    def get_object_by_id(self, object_id: int) -> StoredObject:
        for obj in self.objects.values():
            if obj.meta.object_id == object_id:
                return obj
        raise ObjectNotFoundError(f"no object with id {object_id}")

    # ----------------------------------------------------------------- indexes
    def build_index(self, name: str) -> None:
        """Build per-region WAH bitmap indexes for an object and persist
        them as index files (§III-D4).  Idempotent."""
        obj = self.get_object(name)
        if obj.indexes is not None:
            return
        indexes: List[RegionBitmapIndex] = []
        nbytes = np.empty(obj.n_regions, dtype=np.int64)
        words = np.empty(obj.n_regions, dtype=np.int64)
        for rid in range(obj.n_regions):
            off, count = int(obj.offsets[rid]), int(obj.counts[rid])
            idx = RegionBitmapIndex.build(
                obj.data[off : off + count], precision=self.config.index_precision
            )
            indexes.append(idx)
            nbytes[rid] = idx.nbytes
            words[rid] = idx.total_words()
        # Persist one concatenated index file per object (regions are
        # extents within it, like the data file).
        payload = np.concatenate([idx.to_bytes() for idx in indexes])
        path = f"/pdc/index/{name}"
        if self.pfs.exists(path):
            self.pfs.delete(path)
        self.pfs.create(path, payload, stripe_count=self.config.pdc_stripe_count)
        obj.indexes = indexes
        obj.index_nbytes = nbytes
        obj.index_words = words
        for rid, region in enumerate(obj.meta.regions):
            region.index_path = path

    def index_size_bytes(self, name: str) -> int:
        """Total index-file size for one object (paper §V: 15–17 % of the
        data for VPIC)."""
        obj = self.get_object(name)
        if obj.index_nbytes is None:
            raise QueryError(f"object {name!r} has no index")
        return int(obj.index_nbytes.sum())

    # ---------------------------------------------------------------- replicas
    def build_sorted_replica(self, key_name: str, companions: Sequence[str] = ()) -> ReplicaGroup:
        """Build a by-value sorted replica of ``key_name`` (and companion
        objects), §III-D3.  The one-time sort+write cost is recorded on the
        group, not charged to query clocks."""
        if key_name in self.replicas:
            return self.replicas[key_name]
        key_obj = self.get_object(key_name)
        comp_data = {c: self.get_object(c).data for c in companions}
        replica = SortedReplica.build(key_name, key_obj.data, comp_data)

        region_elems = key_obj.region_elements
        extents = partition(replica.n_elements, region_elems)
        offsets = np.array([e[0] for e in extents], dtype=np.int64)
        counts = np.array([e[1] for e in extents], dtype=np.int64)
        key_rmin = replica.key_values[offsets].astype(np.float64)
        key_rmax = replica.key_values[np.minimum(offsets + counts - 1, replica.n_elements - 1)].astype(np.float64)

        key_file = f"/pdc/sorted/{key_name}/key"
        perm_file = f"/pdc/sorted/{key_name}/perm"
        self.pfs.create(key_file, replica.key_values, stripe_count=self.config.pdc_stripe_count)
        self.pfs.create(perm_file, replica.permutation, stripe_count=self.config.pdc_stripe_count)
        companion_files = {}
        for cname, cdata in replica.companions.items():
            cpath = f"/pdc/sorted/{key_name}/{cname}"
            self.pfs.create(cpath, cdata, stripe_count=self.config.pdc_stripe_count)
            companion_files[cname] = cpath

        build_time = self.cost.sort_time(replica.n_elements) + self.cost.pfs_write_time(
            replica.nbytes, 1 + len(companion_files), self.config.pdc_stripe_count,
            self.n_servers,
        )
        group = ReplicaGroup(
            replica=replica,
            key_file=key_file,
            perm_file=perm_file,
            companion_files=companion_files,
            region_elements=region_elems,
            offsets=offsets,
            counts=counts,
            key_rmin=key_rmin,
            key_rmax=key_rmax,
            build_time_s=build_time,
        )
        self.replicas[key_name] = group
        key_obj.meta.sorted_by = key_name
        for c in companions:
            self.get_object(c).meta.sorted_by = key_name
        return group

    def replica_covering(self, object_names: Sequence[str]) -> Optional[ReplicaGroup]:
        """A replica whose key+companions cover all the given objects, if
        one exists.  Stale replicas (``mark_stale``/``rebuild`` staleness
        policies) are skipped — planning must never consult a sorted copy
        that no longer matches the payload."""
        for key_name, group in self.replicas.items():
            if group.stale:
                continue
            covered = {key_name, *group.replica.companions}
            if all(n in covered for n in object_names):
                return group
        return None

    # ------------------------------------------------------------- fault plan
    def set_fault_plan(self, plan) -> None:
        """Install a :class:`repro.faults.FaultPlan` on this system, every
        server, and the PFS (None uninstalls).  With no plan — or a plan
        whose rates are all zero — query costs are bit-identical to the
        pre-fault code path."""
        self.fault_plan = plan
        for s in self.servers:
            s.fault_plan = plan
        self.pfs.fault_plan = plan

    # ------------------------------------------------------------- observability
    def set_tracer(self, tracer) -> None:
        """Install a tracer (``repro.obs.Tracer`` or the no-op) on this
        system and every server; spans only *read* simulated clocks, so
        enabling tracing never changes query costs."""
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        for s in self.servers:
            s.tracer = self.tracer

    def set_monitor(self, monitor) -> None:
        """Install a :class:`repro.obs.monitor.ServiceMonitor` on this
        system and every server (None restores the zero-cost no-op).
        Monitor hooks only *read* simulated clocks — the instant is passed
        in by the instrumented site — so enabling monitoring never changes
        query results, costs, or engine metrics."""
        self.monitor = monitor if monitor is not None else NOOP_MONITOR
        for s in self.servers:
            s.monitor = self.monitor

    def drop_all_caches(self) -> None:
        for s in self.servers:
            s.drop_caches()

    def reset_clocks(self) -> None:
        for c in self.all_clocks():
            c.reset()

    def cache_stats(self) -> Dict[int, Tuple[int, int]]:
        """server id → (hits, misses)."""
        return {s.server_id: (s.cache.stats.hits, s.cache.stats.misses) for s in self.servers}
