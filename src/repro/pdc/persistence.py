"""Whole-deployment persistence: save/load a PDCSystem to a real directory.

The paper's PDC persists metadata periodically (§II) and keeps data files
on the PFS; a restartable open-source release needs the equivalent for
the *simulated* deployment, so long-running studies (or CI) can build a
deployment once and reload it.

Format (one directory):

* ``manifest.json`` — config, object inventory (names, ids, dims, types,
  tags, containers, sorted-by markers, region tiers), replica inventory;
* ``data.npz`` — every object's payload array (compressed);
* ``replicas.npz`` — sorted-replica key/permutation arrays.

On :func:`load_system`, regions/histograms/global histograms are rebuilt
deterministically from the payloads (same seeds as at import), and
indexes/replicas are rebuilt where the manifest says they existed — the
rebuild path is the same code as first-time import, so a loaded system is
indistinguishable from a freshly built one (tested).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

import numpy as np

from ..errors import PDCError
from ..storage.costmodel import CostParameters
from ..strategies import Strategy
from .system import PDCConfig, PDCSystem

__all__ = ["save_system", "load_system"]

_FORMAT_VERSION = 1


def _config_to_dict(cfg: PDCConfig) -> dict:
    d = {
        "n_servers": cfg.n_servers,
        "region_size_bytes": cfg.region_size_bytes,
        "virtual_scale": cfg.virtual_scale,
        "server_memory_bytes": cfg.server_memory_bytes,
        "strategy": cfg.strategy.value if cfg.strategy else None,
        "pdc_stripe_count": cfg.pdc_stripe_count,
        "hdf5_stripe_count": cfg.hdf5_stripe_count,
        "hdf5_imbalance": cfg.hdf5_imbalance,
        "histogram_bins": cfg.histogram_bins,
        "index_precision": cfg.index_precision,
        "aggregation_gap_elements": cfg.aggregation_gap_elements,
        "get_data_whole_regions": cfg.get_data_whole_regions,
        "n_meta_shards": cfg.n_meta_shards,
        "cost_params": {
            k: getattr(cfg.cost_params, k)
            for k in (
                "seek_latency_s",
                "ost_bandwidth_bps",
                "n_osts",
                "max_stripe_count",
                "net_latency_s",
                "net_bandwidth_bps",
                "scan_cost_per_elem_s",
                "mem_bandwidth_bps",
                "contention_alpha",
                "wah_word_cost_s",
                "server_overhead_s",
                "client_overhead_s",
                "meta_op_cost_s",
            )
        },
    }
    return d


def _config_from_dict(d: dict) -> PDCConfig:
    return PDCConfig(
        n_servers=d["n_servers"],
        region_size_bytes=d["region_size_bytes"],
        virtual_scale=d["virtual_scale"],
        cost_params=CostParameters(**d["cost_params"]),
        server_memory_bytes=d["server_memory_bytes"],
        strategy=Strategy(d["strategy"]) if d["strategy"] else None,
        pdc_stripe_count=d["pdc_stripe_count"],
        hdf5_stripe_count=d["hdf5_stripe_count"],
        hdf5_imbalance=d["hdf5_imbalance"],
        histogram_bins=d["histogram_bins"],
        index_precision=d["index_precision"],
        aggregation_gap_elements=d["aggregation_gap_elements"],
        get_data_whole_regions=d["get_data_whole_regions"],
        n_meta_shards=d["n_meta_shards"],
    )


def save_system(system: PDCSystem, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Persist a deployment to ``path`` (a directory, created if needed)."""
    path = pathlib.Path(path)
    path.mkdir(parents=True, exist_ok=True)

    objects = {}
    payloads: Dict[str, np.ndarray] = {}
    for name, obj in system.objects.items():
        objects[name] = {
            "object_id": obj.meta.object_id,
            "dims": list(obj.meta.dims) if obj.meta.dims else None,
            "pdc_type": obj.meta.pdc_type.value,
            "container": obj.meta.container,
            "tags": obj.meta.tags,
            "indexed": obj.indexes is not None,
            "region_tier": list(obj.region_tier) if obj.region_tier else None,
        }
        payloads[name] = obj.data

    replicas = {
        key: sorted(group.replica.companions) for key, group in system.replicas.items()
    }

    manifest = {
        "format_version": _FORMAT_VERSION,
        "config": _config_to_dict(system.config),
        "objects": objects,
        "replicas": replicas,
        "containers": {
            name: {"tags": c.tags, "members": c.members()}
            for name, c in system.containers.items()
        },
    }
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2, default=str))
    np.savez_compressed(path / "data.npz", **payloads)
    return path


def load_system(path: Union[str, pathlib.Path]) -> PDCSystem:
    """Rebuild a deployment saved by :func:`save_system`."""
    path = pathlib.Path(path)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise PDCError(f"no deployment manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise PDCError(
            f"unsupported deployment format {manifest.get('format_version')!r}"
        )

    system = PDCSystem(_config_from_dict(manifest["config"]))
    with np.load(path / "data.npz") as payloads:
        # Recreate objects in ascending original-id order so object ids
        # match the saved deployment.
        items = sorted(manifest["objects"].items(), key=lambda kv: kv[1]["object_id"])
        for name, info in items:
            data = payloads[name]
            if info["dims"]:
                data = data.reshape(info["dims"])
            obj = system.create_object(
                name, data, tags=info["tags"], container=info["container"]
            )
            if obj.meta.object_id != info["object_id"]:
                raise PDCError(
                    f"object id drift for {name!r}: "
                    f"{obj.meta.object_id} != saved {info['object_id']}"
                )
            if info["indexed"]:
                system.build_index(name)
            if info["region_tier"]:
                for tier in set(info["region_tier"]):
                    rids = [
                        r for r, t in enumerate(info["region_tier"]) if t == tier
                    ]
                    if tier != "disk":
                        system.migrate_regions(name, rids, tier)
    # Containers that had no objects (or tags) still need restoring.
    for name, info in manifest["containers"].items():
        if name not in system.containers:
            system.create_container(name, info["tags"])
        else:
            system.containers[name].tags.update(info["tags"])
    for key, companions in manifest["replicas"].items():
        system.build_sorted_replica(key, companions)
    # Clocks are a fresh deployment's: reset whatever rebuilding charged.
    system.reset_clocks()
    return system
