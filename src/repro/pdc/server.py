"""PDC server processes.

§II/§V: PDC servers run in user space, one per compute node, each owning a
share of the query work.  In the simulator a :class:`PDCServer` is a
bookkeeping entity: a simulated clock, a region cache bounded by the
per-server memory limit (64 GB in the paper's runs), and the set of objects
whose metadata it has already fetched (metadata is cached after the first
distribution, §III-D2).

The query executor charges all storage/scan/network time to the server's
clock; the answer itself is computed vectorized on whole-object arrays (the
simulator holds real data), which keeps semantics exact while the cost
accounting stays per-server.  When a real tracer is installed on the
owning system, each region made resident emits a ``storage_read`` /
``index_read`` leaf span on this server's clock — the finest-grained
spans of a query trace.
"""

from __future__ import annotations

from typing import Set

from ..errors import RegionUnavailableError
from ..obs.monitor import NOOP_MONITOR
from ..obs.tracer import NOOP_TRACER
from ..storage.cache import RegionCache
from ..storage.costmodel import CostModel, SimClock
from ..types import GB

__all__ = ["PDCServer"]


class PDCServer:
    """One PDC server's simulated state."""

    def __init__(
        self,
        server_id: int,
        cost: CostModel,
        memory_limit_bytes: float = 64 * GB,
        metrics=None,
    ) -> None:
        self.server_id = server_id
        self.cost = cost
        self.clock = SimClock(f"server{server_id}")
        #: Region payload cache (keys from :func:`repro.pdc.region.region_key`);
        #: capacity is in *virtual* (paper-scale) bytes.
        self.cache = RegionCache(
            memory_limit_bytes,
            virtual_scale=cost.virtual_scale,
            metrics=metrics,
            owner=f"server{server_id}",
        )
        #: Object names whose region metadata + global histogram this server
        #: has cached (charged once, on first use).
        self.meta_cached: Set[str] = set()
        #: Region-index files this server has loaded (index reads are cached
        #: in memory alongside data regions).
        self.index_cached: Set[str] = set()
        #: Tracer shared with the owning system (swapped by
        #: :meth:`PDCSystem.set_tracer`); the default no-op records nothing.
        self.tracer = NOOP_TRACER
        #: Monitor shared with the owning system (swapped by
        #: :meth:`PDCSystem.set_monitor`); the default no-op records nothing.
        self.monitor = NOOP_MONITOR
        #: Fault plan shared with the owning system (installed by
        #: :meth:`PDCSystem.set_fault_plan`); None means no injection and
        #: leaves every charge bit-identical to the pre-fault code path.
        self.fault_plan = None
        self.metrics = metrics
        #: Read retries this server has performed (fault recovery).
        self.retries_total = 0

    # ------------------------------------------------------------ fault layer
    def faultable_read(
        self, key: str, seconds: float, category: str = "pfs_read"
    ) -> None:
        """Charge a storage read of ``key``, subject to fault injection.

        With no plan installed this is exactly ``clock.charge(seconds)``.
        Otherwise the read may suffer a latency spike (multiplied cost) or
        fail; failures retry with exponential backoff charged to this
        server's clock, and raise :class:`RegionUnavailableError` once the
        retry budget is exhausted.
        """
        plan = self.fault_plan
        if plan is None:
            self.clock.charge(seconds, category=category)
            return
        attempt = 0
        while True:
            # Latency spikes are per *attempt*: a retry is a fresh PFS
            # request, so its slow factor is re-drawn rather than reusing
            # the first attempt's draw for every retry.  Zero-rate plans
            # never draw (``pfs_slow_factor`` short-circuits), so this
            # stays bit-identical to the no-fault path.
            slow = plan.pfs_slow_factor(key)
            if slow != 1.0:
                self._count_fault("pfs_slow")
            self.clock.charge(seconds * slow, category=category)
            if not plan.pfs_read_fails(key):
                return
            attempt += 1
            self._count_fault("pfs_read_error")
            if attempt > plan.config.max_retries:
                raise RegionUnavailableError(
                    f"server{self.server_id}: read of {key!r} failed "
                    f"after {attempt} attempts"
                )
            self.retries_total += 1
            self._count_retry()
            backoff = plan.backoff_s(attempt)
            if self.tracer.enabled:
                with self.tracer.span(
                    f"retry:{key}", self.clock, category="fault",
                    attempt=attempt,
                ):
                    self.clock.charge(backoff, category="retry_backoff")
            else:
                self.clock.charge(backoff, category="retry_backoff")

    def _count_fault(self, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "pdc_faults_injected_total",
                "Faults injected by the active FaultPlan",
                labels=("kind",),
            ).labels(kind=kind).inc()

    def _count_retry(self) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "pdc_fault_retries_total",
                "Storage-read retries performed during fault recovery",
                labels=("server",),
            ).labels(server=str(self.server_id)).inc()

    # ----------------------------------------------------------------- caching
    def ensure_region(
        self,
        key: str,
        nbytes: int,
        n_accesses: int,
        stripe_count: int,
        concurrent_readers: int,
        category: str = "pfs_read",
        scaled: bool = True,
        hit_copy: bool = False,
        tier: str = "disk",
    ) -> bool:
        """Charge for making a region resident: a PFS read on miss; free on
        a hit (scans run in place over cached buffers) unless ``hit_copy``
        asks for a memory-copy charge (get_data materialization).

        ``scaled=False`` for metadata-sized payloads (index directories)
        whose size does not grow with the virtual dataset.
        """
        if self.cache.lookup(key):
            if hit_copy:
                self.clock.charge(
                    self.cost.mem_copy_time(nbytes, scaled=scaled), category="mem_copy"
                )
            if self.monitor.enabled:
                # Warm-cache traffic must stay visible to the time-series
                # utilization view; ``result="hit"`` keeps it separable
                # from actual PFS reads.
                self.monitor.on_region_read(
                    self.clock.now, self.server_id, float(nbytes), category,
                    result="hit",
                )
            return True
        read_time = self.cost.tier_read_time(
            nbytes, n_accesses, tier, stripe_count, concurrent_readers,
            scaled=scaled,
        )
        if self.tracer.enabled:
            span_cat = "index_read" if category == "index_read" else "storage_read"
            with self.tracer.span(
                f"read:{key}", self.clock, category=span_cat,
                bytes=nbytes, tier=tier,
            ):
                self.faultable_read(key, read_time, category=category)
        else:
            self.faultable_read(key, read_time, category=category)
        self.cache.put(key, nbytes=nbytes if scaled else 0)
        if self.monitor.enabled:
            self.monitor.on_region_read(
                self.clock.now, self.server_id, float(nbytes), category,
                result="read",
            )
        return False

    def preload_region(
        self,
        key: str,
        nbytes: int,
        stripe_count: int,
        concurrent_readers: int,
        tier: str = "disk",
    ) -> bool:
        """Shared-scan batch preload: make ``key`` resident on behalf of a
        whole query batch.  Charging is identical to :meth:`ensure_region`
        (so a preloaded region costs exactly what the first demanding query
        would have paid); exists so preloads show up under their own
        metric.  Returns True when the region was already resident.
        """
        hit = self.ensure_region(
            key, nbytes, 1, stripe_count, concurrent_readers, tier=tier
        )
        if self.metrics is not None:
            self.metrics.counter(
                "pdc_batch_preloads_total",
                "Shared-scan batch region preloads by server and result.",
                labels=("server", "result"),
            ).labels(
                server=f"server{self.server_id}",
                result="hit" if hit else "read",
            ).inc()
        return hit

    def reset_clock(self) -> None:
        self.clock.reset()

    def drop_caches(self) -> None:
        """Cold-start this server (ablation: caching on/off)."""
        self.cache.clear()
        self.meta_cached.clear()
        self.index_cached.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PDCServer(id={self.server_id}, t={self.clock.now:.4f}s, "
            f"cached={len(self.cache)})"
        )
