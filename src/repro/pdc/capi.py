"""C-style PDC object-management shims.

§II summarizes PDC's existing object interface from the prior papers
([5], [6]): ``PDCinit``, container/property/object creation, tag and data
operations.  PDC-Query (Fig. 1) builds on those.  These shims complete the
ODMS surface so code translated from C PDC programs reads one-to-one::

    pdc = PDCinit("pdc")
    cont = PDCcont_create(pdc, "c1")
    prop = PDCprop_create(pdc)
    PDCprop_set_obj_dims(prop, (1_000_000,))
    PDCprop_set_obj_type(prop, "float")
    obj_id = PDCobj_create(pdc, cont, "Energy", prop)
    PDCobj_put_data(pdc, obj_id, my_array)
    PDCobj_put_tag(pdc, obj_id, "run", 42)

They are thin veneers over :class:`~repro.pdc.system.PDCSystem`; the
Pythonic interface remains the primary API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..errors import PDCError, QueryTypeError
from ..types import PDCType
from .system import PDCConfig, PDCSystem

__all__ = [
    "PDCinit",
    "PDCcont_create",
    "PDCprop_create",
    "PDCprop_set_obj_dims",
    "PDCprop_set_obj_type",
    "PDCobj_create",
    "PDCobj_put_data",
    "PDCobj_get_data",
    "PDCobj_put_tag",
    "PDCobj_get_tag",
    "PDCobj_del",
    "PDCquery_set_priority",
    "PDCquery_set_timeout",
    "PDCclose",
    "ObjectProperty",
]


@dataclass
class ObjectProperty:
    """An object-creation property handle (``pdc_prop_t``)."""

    dims: Optional[Tuple[int, ...]] = None
    pdc_type: Optional[PDCType] = None
    tags: Dict[str, object] = field(default_factory=dict)


def PDCinit(name: str = "pdc", config: Optional[PDCConfig] = None) -> PDCSystem:
    """Initialize a PDC deployment (``PDCinit``)."""
    return PDCSystem(config)


def PDCcont_create(pdc: PDCSystem, cont_name: str) -> str:
    """Create a container; returns its handle (name)."""
    pdc.create_container(cont_name)
    return cont_name


def PDCprop_create(pdc: PDCSystem) -> ObjectProperty:
    """Create an object-creation property."""
    return ObjectProperty()


def PDCprop_set_obj_dims(prop: ObjectProperty, dims: Tuple[int, ...]) -> None:
    dims = tuple(int(d) for d in dims)
    if not dims or any(d <= 0 for d in dims):
        raise PDCError(f"bad object dims {dims}")
    prop.dims = dims


def PDCprop_set_obj_type(prop: ObjectProperty, pdc_type: Union[PDCType, str]) -> None:
    prop.pdc_type = pdc_type if isinstance(pdc_type, PDCType) else PDCType(pdc_type)


def PDCobj_create(
    pdc: PDCSystem, cont: str, obj_name: str, prop: ObjectProperty
) -> int:
    """Create an (initially zero-filled) object from a property; returns
    the object id."""
    if prop.dims is None or prop.pdc_type is None:
        raise PDCError("object property needs dims and type before create")
    data = np.zeros(prop.dims, dtype=prop.pdc_type.np_dtype)
    obj = pdc.create_object(obj_name, data, tags=dict(prop.tags), container=cont)
    return obj.meta.object_id


def PDCobj_put_data(
    pdc: PDCSystem, obj_id: int, data: np.ndarray, offset: int = 0
) -> None:
    """Write data into an object (maintains histograms/indexes/replicas
    like any update)."""
    obj = pdc.get_object_by_id(obj_id)
    data = np.asarray(data)
    if data.dtype != obj.data.dtype:
        raise QueryTypeError(
            f"object {obj.name!r} is {obj.data.dtype}, payload is {data.dtype}"
        )
    pdc.update_object_region(obj.name, offset, data.reshape(-1))


def PDCobj_get_data(
    pdc: PDCSystem, obj_id: int, offset: int = 0, count: Optional[int] = None
) -> np.ndarray:
    """Read a contiguous slice of an object's (flattened) data."""
    obj = pdc.get_object_by_id(obj_id)
    stop = obj.n_elements if count is None else offset + count
    if not (0 <= offset <= stop <= obj.n_elements):
        raise PDCError(f"read [{offset}, {stop}) out of bounds for {obj.name!r}")
    return obj.data[offset:stop].copy()


def PDCobj_put_tag(pdc: PDCSystem, obj_id: int, name: str, value: object) -> None:
    """Attach/overwrite a key-value tag."""
    obj = pdc.get_object_by_id(obj_id)
    obj.meta.tags[name] = value


def PDCobj_get_tag(pdc: PDCSystem, obj_id: int, name: str) -> object:
    obj = pdc.get_object_by_id(obj_id)
    try:
        return obj.meta.tags[name]
    except KeyError:
        raise PDCError(f"object {obj.name!r} has no tag {name!r}") from None


def PDCobj_del(pdc: PDCSystem, obj_id: int) -> None:
    """Delete an object: data/index/HDF5 files, metadata, container
    membership, replicas that cover it, and cache entries."""
    obj = pdc.get_object_by_id(obj_id)
    name = obj.name
    for key_name in list(pdc.replicas):
        group = pdc.replicas[key_name]
        if name in {key_name, *group.replica.companions}:
            pdc.drop_sorted_replica(key_name)
    for path in (obj.file_path, obj.hdf5_path, f"/pdc/index/{name}"):
        if pdc.pfs.exists(path):
            pdc.pfs.delete(path)
    from .region import region_key

    for server in pdc.servers:
        for rid in range(obj.n_regions):
            server.cache.invalidate(region_key(name, rid))
            server.cache.invalidate(region_key(name, rid, replica="idx"))
        server.meta_cached.discard(name)
    pdc.metadata.delete(name)
    pdc.containers[obj.meta.container].remove(name)
    del pdc.objects[name]


def PDCquery_set_priority(query, priority: int) -> None:
    """Set a query's service-level dispatch priority (higher runs first
    under priority-aware scheduling — the strict-priority service policy
    and :meth:`QueryScheduler.flush` windows).

    ``query`` is a :class:`~repro.query.api.PDCQuery` (duck-typed here so
    the object layer need not import the query layer)."""
    query.priority = int(priority)


def PDCquery_set_timeout(query, timeout_s: float) -> None:
    """Bound a query's *simulated* execution time.  A query exceeding the
    budget returns a partial result flagged ``timed_out`` (a subset of
    the true answer) instead of running on — see docs/robustness.md."""
    if not (timeout_s > 0.0):
        raise PDCError(f"timeout_s must be positive, got {timeout_s!r}")
    query.timeout_s = float(timeout_s)


def PDCclose(pdc: PDCSystem) -> None:
    """Tear down a deployment (caches dropped; metadata checkpointed for
    the next start, §II)."""
    pdc.metadata.checkpoint()
    pdc.drop_all_caches()
