"""The object-centric data management substrate (PDC, §II): containers,
objects, regions, metadata service, servers, and the deployment object."""

from .container import Container
from .metadata import ObjectMeta
from .metaserver import MetadataService
from .observability import SystemSnapshot, report, snapshot
from .persistence import load_system, save_system
from .placement import POLICIES, assign_region_ids, block, least_loaded, round_robin
from .region import RegionMeta, partition, region_key
from .server import PDCServer
from .system import PDCConfig, PDCSystem, ReplicaGroup, StoredObject

__all__ = [
    "Container",
    "ObjectMeta",
    "MetadataService",
    "SystemSnapshot",
    "load_system",
    "save_system",
    "report",
    "snapshot",
    "POLICIES",
    "assign_region_ids",
    "block",
    "least_loaded",
    "round_robin",
    "RegionMeta",
    "partition",
    "region_key",
    "PDCServer",
    "PDCConfig",
    "PDCSystem",
    "ReplicaGroup",
    "StoredObject",
]
