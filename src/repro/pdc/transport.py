"""Client/server query transport over the simulated MPI runtime.

§III-C: *"The PDC client library automatically serializes the query
conditions and broadcasts them to all available servers ... The servers
send the result back to the client after it finishes its query
evaluation."*

This module runs that protocol for real on :mod:`repro.simmpi` threads:
rank 0 is the client, ranks 1..N are PDC servers.  Each server evaluates
its (stable-modulo) share of regions directly against the raw region
payloads and ships local hit coordinates back; the client merges them.  It
is the wire-level counterpart of the vectorized
:class:`~repro.query.executor.QueryEngine` — both must produce identical
answers (tested), and this path exercises serialization, broadcast, and
gather semantics end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TransportError
from ..query.ast import QueryNode, conjunct_intervals, node_from_dict, to_dnf
from ..simmpi.communicator import Communicator
from ..simmpi.launcher import run_spmd
from .system import PDCSystem

__all__ = ["QueryRequest", "QueryReply", "run_distributed_query"]


@dataclass(frozen=True)
class QueryRequest:
    """Wire form of a query: a serialized condition tree + constraint."""

    tree: dict
    region_constraint: Optional[Tuple[int, int]] = None

    def to_wire(self) -> dict:
        return {"tree": self.tree, "region": self.region_constraint}

    @classmethod
    def from_wire(cls, wire: dict) -> "QueryRequest":
        region = wire.get("region")
        return cls(
            tree=wire["tree"],
            region_constraint=tuple(region) if region is not None else None,
        )


@dataclass
class QueryReply:
    """One server's local result."""

    server_rank: int
    coords: np.ndarray


def _server_share(system: PDCSystem, n_servers: int, server_index: int, name: str):
    """(region ids, extents) owned by one server under the stable modulo
    assignment."""
    obj = system.get_object(name)
    rids = np.arange(obj.n_regions, dtype=np.int64)
    mine = rids[rids % n_servers == server_index]
    return obj, mine


def _evaluate_share(
    system: PDCSystem,
    request: QueryRequest,
    n_servers: int,
    server_index: int,
) -> np.ndarray:
    """Evaluate the request over one server's regions, reading payloads
    from the (simulated) PFS like a real server would."""
    node = node_from_dict(request.tree)
    all_coords: List[np.ndarray] = []
    for leaves in to_dnf(node):
        conjunct = conjunct_intervals(leaves)
        if conjunct is None:
            continue
        coords: Optional[np.ndarray] = None
        for name, interval in conjunct.items():
            obj, mine = _server_share(system, n_servers, server_index, name)
            if coords is None:
                parts = []
                for rid in mine:
                    off, count = int(obj.offsets[rid]), int(obj.counts[rid])
                    (payload,) = system.pfs.read_extents(
                        obj.file_path, [(off, off + count)]
                    )
                    local = np.flatnonzero(interval.mask(payload)).astype(np.int64)
                    parts.append(local + off)
                coords = (
                    np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
                )
            else:
                obj = system.get_object(name)
                values = obj.data[coords]
                coords = coords[interval.mask(values)]
            if coords.size == 0:
                break
        if coords is not None and coords.size:
            all_coords.append(coords)
    # The spatial region constraint is applied by the client, mirroring PDC
    # where servers return region-local results.
    if not all_coords:
        return np.zeros(0, dtype=np.int64)
    return np.unique(np.concatenate(all_coords))


def run_distributed_query(
    system: PDCSystem,
    node: QueryNode,
    n_server_ranks: Optional[int] = None,
    region_constraint: Optional[Tuple[int, int]] = None,
    fault_plan=None,
) -> np.ndarray:
    """Execute a query over simmpi ranks; returns sorted hit coordinates.

    Spawns ``1 + n_server_ranks`` ranks: the client broadcasts the
    serialized request, servers evaluate their shares, and the client
    gathers + merges (deduplicating, as the paper's OR path does).
    ``fault_plan`` (default: the system's installed plan) injects
    deterministic message drops/delays on the wire.
    """
    n_servers = system.n_servers if n_server_ranks is None else n_server_ranks
    if n_servers < 1:
        raise TransportError("need at least one server rank")
    request = QueryRequest(tree=node.to_dict(), region_constraint=region_constraint)

    def rank_main(comm: Communicator) -> Optional[np.ndarray]:
        wire = comm.bcast(request.to_wire() if comm.rank == 0 else None, root=0)
        req = QueryRequest.from_wire(wire)
        if comm.rank == 0:
            local = np.zeros(0, dtype=np.int64)
        else:
            local = _evaluate_share(system, req, comm.size - 1, comm.rank - 1)
        gathered = comm.gather(local, root=0)
        if comm.rank != 0:
            return None
        merged = np.unique(np.concatenate(gathered))
        if req.region_constraint is not None:
            start, stop = req.region_constraint
            merged = merged[(merged >= start) & (merged < stop)]
        return merged

    if fault_plan is None:
        fault_plan = system.fault_plan
    results = run_spmd(1 + n_servers, rank_main, fault_plan=fault_plan)
    return results[0]
