"""Containers: named collections of objects (§II: *"PDC organizes data as a
collection of objects in a number of containers"*)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..errors import MetadataError, ObjectNotFoundError

__all__ = ["Container"]


@dataclass
class Container:
    """A grouping of object names with its own small metadata."""

    name: str
    tags: Dict[str, object] = field(default_factory=dict)
    _members: Set[str] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise MetadataError("container name must be non-empty")

    def add(self, object_name: str) -> None:
        if object_name in self._members:
            raise MetadataError(
                f"object {object_name!r} already in container {self.name!r}"
            )
        self._members.add(object_name)

    def remove(self, object_name: str) -> None:
        try:
            self._members.remove(object_name)
        except KeyError:
            raise ObjectNotFoundError(
                f"object {object_name!r} not in container {self.name!r}"
            ) from None

    def members(self) -> List[str]:
        return sorted(self._members)

    def __contains__(self, object_name: str) -> bool:
        return object_name in self._members

    def __len__(self) -> int:
        return len(self._members)
