"""The metadata service: hash-partitioned, consistent, checkpointed.

§II: *"A metadata object is managed by only one server to guarantee
consistency and is periodically persisted to the storage system for fault
tolerance."*  The service shards object metadata across metadata servers by
a stable hash of the object name; metadata queries (tag predicates) fan out
to all shards and run in modeled parallel time.

§VI-C attributes Fig. 5's multi-fold speedup mostly to this component: PDC
*"can locate the 1000 objects instantly"* out of 25 million because the tag
scan runs over pre-loaded in-memory records instead of traversing 2448
HDF5 files.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Dict, List, Optional

import numpy as np

from ..errors import MetadataConsistencyError, MetadataError, ObjectNotFoundError
from ..storage.costmodel import CostModel, SimClock
from ..storage.file import ParallelFileSystem
from .metadata import ObjectMeta, TagValue

__all__ = ["MetadataService"]


def _stable_hash(name: str) -> int:
    """Deterministic across processes (unlike ``hash``)."""
    return zlib.crc32(name.encode("utf-8"))


class MetadataService:
    """Hash-partitioned in-memory metadata store with PFS checkpoints."""

    CHECKPOINT_PREFIX = "/pdc/meta/checkpoint"

    def __init__(
        self,
        n_shards: int,
        pfs: ParallelFileSystem,
        cost: Optional[CostModel] = None,
    ) -> None:
        if n_shards < 1:
            raise MetadataError("need at least one metadata shard")
        self.n_shards = n_shards
        self.pfs = pfs
        self.cost = cost or pfs.cost
        self._shards: List[Dict[str, ObjectMeta]] = [dict() for _ in range(n_shards)]
        self._next_object_id = 1
        self._logical_time = 0
        #: Recorded membership views: ``(t_s, generation, members)``
        #: tuples, appended by the owning system on every membership
        #: event (the metadata service is the durable home of "who is in
        #: the cluster", exactly as it is for object ownership).
        self._views: List[tuple] = []

    # ---------------------------------------------------------------- routing
    def shard_of(self, name: str) -> int:
        """Owning shard of an object name (consistency: exactly one)."""
        return _stable_hash(name) % self.n_shards

    # ------------------------------------------------------------------- CRUD
    def allocate_object_id(self) -> int:
        oid = self._next_object_id
        self._next_object_id += 1
        return oid

    def tick(self) -> int:
        """Logical timestamp for created_at fields."""
        self._logical_time += 1
        return self._logical_time

    def record_view(self, t_s: float, view) -> None:
        """Persist one membership view (``view`` is a
        :class:`~repro.cluster.membership.MembershipView`).  Pure
        bookkeeping: no logical-time tick, no clock charge — recording a
        view must never shift ``created_at`` of later objects."""
        self._views.append((float(t_s), int(view.generation), tuple(view.members)))

    def latest_view(self) -> Optional[tuple]:
        """The most recently recorded ``(t_s, generation, members)``
        tuple, or None before any membership event."""
        return self._views[-1] if self._views else None

    @property
    def views(self) -> List[tuple]:
        return list(self._views)

    def create(self, meta: ObjectMeta) -> None:
        shard = self._shards[self.shard_of(meta.name)]
        if meta.name in shard:
            raise MetadataError(f"object {meta.name!r} already exists")
        shard[meta.name] = meta

    def get(self, name: str) -> ObjectMeta:
        shard = self._shards[self.shard_of(name)]
        try:
            return shard[name]
        except KeyError:
            raise ObjectNotFoundError(f"no metadata for object {name!r}") from None

    def get_by_id(self, object_id: int) -> ObjectMeta:
        for shard in self._shards:
            for meta in shard.values():
                if meta.object_id == object_id:
                    return meta
        raise ObjectNotFoundError(f"no metadata for object id {object_id}")

    def exists(self, name: str) -> bool:
        return name in self._shards[self.shard_of(name)]

    def delete(self, name: str) -> None:
        shard = self._shards[self.shard_of(name)]
        if name not in shard:
            raise ObjectNotFoundError(f"no metadata for object {name!r}")
        del shard[name]

    def all_names(self) -> List[str]:
        return sorted(n for shard in self._shards for n in shard)

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    # ------------------------------------------------------------- tag queries
    def query_tags(
        self,
        conditions: Dict[str, TagValue],
        clock: Optional[SimClock] = None,
    ) -> List[str]:
        """Names of objects whose tags match every (key, value) pair.

        Modeled parallel time: shards scan concurrently; the caller's clock
        is charged the slowest shard's scan (records × per-record cost).
        """
        matches: List[str] = []
        slowest = 0.0
        for shard in self._shards:
            slowest = max(slowest, len(shard) * self.cost.params.meta_op_cost_s)
            for meta in shard.values():
                if meta.matches_tags(conditions):
                    matches.append(meta.name)
        if clock is not None:
            clock.charge(slowest, category="meta_query")
        matches.sort()
        return matches

    # ------------------------------------------------------------ checkpoints
    def checkpoint(self, clock: Optional[SimClock] = None) -> str:
        """Persist every shard to the PFS; returns the checkpoint path
        prefix.  Overwrites the previous checkpoint."""
        for i, shard in enumerate(self._shards):
            path = f"{self.CHECKPOINT_PREFIX}/shard{i}"
            payload = np.frombuffer(
                pickle.dumps(shard, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
            ).copy()
            if self.pfs.exists(path):
                self.pfs.delete(path)
            self.pfs.create(path, payload, clock=clock)
        state = np.array([self._next_object_id, self._logical_time], dtype=np.int64)
        state_path = f"{self.CHECKPOINT_PREFIX}/state"
        if self.pfs.exists(state_path):
            self.pfs.delete(state_path)
        self.pfs.create(state_path, state, clock=clock)
        views_path = f"{self.CHECKPOINT_PREFIX}/views"
        if self.pfs.exists(views_path):
            self.pfs.delete(views_path)
        if self._views:
            # Written only when membership events exist, so a deployment
            # that never changes membership checkpoints (and charges)
            # exactly as it did before views were recorded.
            views_payload = np.frombuffer(
                pickle.dumps(self._views, protocol=pickle.HIGHEST_PROTOCOL),
                dtype=np.uint8,
            ).copy()
            self.pfs.create(views_path, views_payload, clock=clock)
        return self.CHECKPOINT_PREFIX

    def restore(self, clock: Optional[SimClock] = None) -> None:
        """Reload all shards from the last checkpoint (fault-tolerance
        path).  Raises :class:`MetadataError` when no checkpoint exists."""
        state_path = f"{self.CHECKPOINT_PREFIX}/state"
        if not self.pfs.exists(state_path):
            raise MetadataError("no metadata checkpoint to restore")
        shards: List[Dict[str, ObjectMeta]] = []
        for i in range(self.n_shards):
            path = f"{self.CHECKPOINT_PREFIX}/shard{i}"
            payload = self.pfs.read(path, clock=clock)
            shard = pickle.loads(payload.tobytes())
            # Consistency check: every record must hash to this shard.
            for name in shard:
                if _stable_hash(name) % self.n_shards != i:
                    raise MetadataConsistencyError(
                        f"object {name!r} found in shard {i}, "
                        f"owner is {_stable_hash(name) % self.n_shards}"
                    )
            shards.append(shard)
        state = self.pfs.read(state_path, clock=clock)
        self._shards = shards
        self._next_object_id = int(state[0])
        self._logical_time = int(state[1])
        views_path = f"{self.CHECKPOINT_PREFIX}/views"
        if self.pfs.exists(views_path):
            # Checkpoints from before membership views existed lack the
            # file; restoring one simply leaves the view log untouched.
            self._views = pickle.loads(
                self.pfs.read(views_path, clock=clock).tobytes()
            )
