"""Regions: the basic data-management unit of PDC (§III-B).

Large objects are decomposed into fixed-size regions so data operations
parallelize and subsets can be read without touching the whole object.
Each region carries its own metadata — offset/size within the object, the
storage location of its payload, its mergeable histogram, and true min/max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import PDCError
from ..histogram.mergeable import MergeableHistogram

__all__ = ["RegionMeta", "partition", "region_key"]


@dataclass
class RegionMeta:
    """Metadata of one region of one object.

    The payload itself lives in the object's file on the parallel file
    system (``file_path`` + element offset) or in a server cache; this
    record is what the metadata service distributes to query servers.
    """

    region_id: int
    object_name: str
    #: Element offset of this region within the object.
    offset: int
    #: Number of elements in this region.
    n_elements: int
    #: PFS path of the file holding the payload.
    file_path: str
    #: Storage tier currently holding the authoritative copy.
    tier: str = "disk"
    #: Per-region mergeable histogram (built at import/production time —
    #: §III-D2: "automatically generated ... at no additional cost").
    histogram: Optional[MergeableHistogram] = None
    #: PFS path of this region's bitmap-index file, when one was built.
    index_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.offset < 0 or self.n_elements <= 0:
            raise PDCError(
                f"bad region extent offset={self.offset} n={self.n_elements}"
            )

    @property
    def stop(self) -> int:
        """One past the last element offset."""
        return self.offset + self.n_elements

    @property
    def extent(self) -> Tuple[int, int]:
        """Half-open element extent within the object."""
        return (self.offset, self.stop)

    @property
    def minmax(self) -> Tuple[float, float]:
        """True value extrema, from the histogram."""
        if self.histogram is None:
            raise PDCError(f"region {self.region_id} has no histogram")
        return (self.histogram.data_min, self.histogram.data_max)

    def overlaps_coords(self, start: int, stop: int) -> bool:
        """Does this region intersect the coordinate range ``[start, stop)``
        (spatial region constraint, §III-A)?"""
        return start < self.stop and stop > self.offset


def partition(n_elements: int, region_elements: int) -> List[Tuple[int, int]]:
    """Split ``n_elements`` into ``(offset, count)`` chunks of at most
    ``region_elements`` each; the final chunk may be short."""
    if n_elements <= 0:
        raise PDCError("cannot partition an empty object")
    if region_elements <= 0:
        raise PDCError("region size must be positive")
    out = []
    off = 0
    while off < n_elements:
        count = min(region_elements, n_elements - off)
        out.append((off, count))
        off += count
    return out


def region_key(object_name: str, region_id: int, replica: str = "orig") -> str:
    """Cache/storage key of one region payload."""
    return f"{object_name}:{replica}:r{region_id}"
