"""Deployment observability: a structured status report for a PDCSystem.

Production services need to answer "what is this deployment doing?"
without a debugger: per-server simulated-time breakdowns, cache hit
rates, storage traffic, object/index/replica inventory, failures.  Both a
structured snapshot (:func:`snapshot`) and a rendered text report
(:func:`report`) are provided; the CLI and examples use the latter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .system import PDCSystem

__all__ = ["ServerStats", "SystemSnapshot", "snapshot", "report"]


@dataclass
class ServerStats:
    """One server's counters."""

    server_id: int
    alive: bool
    sim_time_s: float
    busy_s: float
    time_breakdown: Dict[str, float]
    cache_entries: int
    cache_used_vbytes: float
    cache_hit_rate: float
    objects_with_metadata: int


@dataclass
class SystemSnapshot:
    """Whole-deployment counters at a point in simulated time."""

    n_servers: int
    n_alive: int
    strategy: str
    virtual_scale: float
    elapsed_s: float
    servers: List[ServerStats]
    n_objects: int
    n_regions_total: int
    indexed_objects: List[str]
    replicas: List[str]
    pfs_files: int
    pfs_bytes_stored: int
    pfs_bytes_read_virtual: float
    pfs_read_accesses: int
    metadata_records: int

    @property
    def aggregate_cache_hit_rate(self) -> float:
        hits = sum(
            s.cache_hit_rate * max(1, s.cache_entries) for s in self.servers
        )  # weighted proxy; exact rates live per server
        total = sum(max(1, s.cache_entries) for s in self.servers)
        return hits / total if total else 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean busy simulated seconds across alive servers (1.0 is
        perfectly balanced)."""
        busy = [s.busy_s for s in self.servers if s.alive]
        if not busy or max(busy) == 0:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0


def snapshot(system: PDCSystem) -> SystemSnapshot:
    """Collect a structured status snapshot (no clock side effects)."""
    servers = []
    for s in system.servers:
        breakdown = s.clock.breakdown()
        busy = sum(v for k, v in breakdown.items() if k != "wait")
        servers.append(
            ServerStats(
                server_id=s.server_id,
                alive=s.server_id not in system._failed_servers,
                sim_time_s=s.clock.now,
                busy_s=busy,
                time_breakdown=breakdown,
                cache_entries=len(s.cache),
                cache_used_vbytes=s.cache.used_bytes,
                cache_hit_rate=s.cache.stats.hit_rate,
                objects_with_metadata=len(s.meta_cached),
            )
        )
    return SystemSnapshot(
        n_servers=system.n_servers,
        n_alive=len(system.alive_servers),
        strategy=system.strategy.value,
        virtual_scale=system.cost.virtual_scale,
        elapsed_s=max(c.now for c in system.all_clocks()),
        servers=servers,
        n_objects=len(system.objects),
        n_regions_total=sum(o.n_regions for o in system.objects.values()),
        indexed_objects=sorted(
            n for n, o in system.objects.items() if o.indexes is not None
        ),
        replicas=sorted(system.replicas),
        pfs_files=len(system.pfs.listdir()),
        pfs_bytes_stored=system.pfs.total_bytes(),
        pfs_bytes_read_virtual=system.pfs.bytes_read,
        pfs_read_accesses=system.pfs.read_accesses,
        metadata_records=len(system.metadata),
    )


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if n < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} TiB"


def report(system: PDCSystem, top_servers: int = 8) -> str:
    """Human-readable deployment status."""
    snap = snapshot(system)
    lines = [
        f"PDC deployment: {snap.n_alive}/{snap.n_servers} servers alive, "
        f"strategy={snap.strategy}, virtual_scale={snap.virtual_scale:g}",
        f"simulated time: {snap.elapsed_s:.4f}s  "
        f"(load imbalance {snap.load_imbalance:.2f}x)",
        f"objects: {snap.n_objects} ({snap.n_regions_total} regions, "
        f"{snap.metadata_records} metadata records)",
        f"indexes: {', '.join(snap.indexed_objects) or 'none'}; "
        f"sorted replicas: {', '.join(snap.replicas) or 'none'}",
        f"storage: {snap.pfs_files} files, {_fmt_bytes(snap.pfs_bytes_stored)} "
        f"stored; {_fmt_bytes(snap.pfs_bytes_read_virtual)} virtual read in "
        f"{snap.pfs_read_accesses} accesses",
        "servers (busiest first):",
    ]
    ranked = sorted(snap.servers, key=lambda s: -s.busy_s)[:top_servers]
    for s in ranked:
        top = sorted(
            ((k, v) for k, v in s.time_breakdown.items() if k != "wait"),
            key=lambda kv: -kv[1],
        )[:3]
        cats = ", ".join(f"{k} {v * 1e3:.1f}ms" for k, v in top) or "idle"
        status = "" if s.alive else "  [FAILED]"
        lines.append(
            f"  server{s.server_id:<4} busy {s.busy_s * 1e3:8.2f}ms  "
            f"cache {s.cache_entries:4d} entries "
            f"({s.cache_hit_rate * 100:5.1f}% hits)  {cats}{status}"
        )
    if len(snap.servers) > top_servers:
        lines.append(f"  ... and {len(snap.servers) - top_servers} more")
    return "\n".join(lines)
