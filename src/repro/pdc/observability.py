"""Deployment observability: a structured status report for a PDCSystem.

Production services need to answer "what is this deployment doing?"
without a debugger: per-server simulated-time breakdowns, cache hit
rates, storage traffic, object/index/replica inventory, failures.  Both a
structured snapshot (:func:`snapshot`) and a rendered text report
(:func:`report`) are provided; the CLI and examples use the latter.

Counters come from two places.  Per-server exact numbers (cache hits,
clock breakdowns) are read off the server instances themselves; the
process-wide :class:`~repro.obs.metrics.MetricsRegistry` totals the
system feeds (queries, planner decisions, PFS traffic, simmpi bytes) are
surfaced in :attr:`SystemSnapshot.metrics`.  Note the registry defaults
to the shared process-wide one, so its totals span every system feeding
it — pass an isolated registry to :class:`PDCSystem` for per-deployment
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .system import PDCSystem

__all__ = ["ServerStats", "SystemSnapshot", "snapshot", "report"]

#: Registry counter families surfaced in a snapshot (when present).
_SNAPSHOT_METRICS = (
    "pdc_queries_total",
    "pdc_plans_total",
    "pdc_query_regions_read_total",
    "pdc_query_regions_pruned_total",
    "pdc_query_regions_cached_total",
    "pdc_query_index_reads_total",
    "pdc_query_bytes_read_virtual_total",
    "pdc_pfs_bytes_read_virtual_total",
    "pdc_pfs_bytes_written_virtual_total",
    "pdc_pfs_read_accesses_total",
    "pdc_cache_lookups_total",
    "pdc_cache_evictions_total",
    "pdc_batches_total",
    "pdc_batch_shared_regions_total",
    "pdc_batch_shared_reads_total",
    "pdc_batch_saved_bytes_virtual_total",
    "pdc_batch_preloads_total",
    "pdc_semantic_cache_lookups_total",
    "simmpi_messages_total",
    "simmpi_bytes_total",
)


@dataclass
class ServerStats:
    """One server's counters."""

    server_id: int
    alive: bool
    sim_time_s: float
    busy_s: float
    time_breakdown: Dict[str, float]
    cache_entries: int
    cache_used_vbytes: float
    cache_hit_rate: float
    objects_with_metadata: int
    #: Exact lookup counters behind ``cache_hit_rate`` (hits / lookups).
    cache_hits: int = 0
    cache_lookups: int = 0


@dataclass
class SystemSnapshot:
    """Whole-deployment counters at a point in simulated time."""

    n_servers: int
    n_alive: int
    strategy: str
    virtual_scale: float
    elapsed_s: float
    servers: List[ServerStats]
    n_objects: int
    n_regions_total: int
    indexed_objects: List[str]
    replicas: List[str]
    pfs_files: int
    pfs_bytes_stored: int
    pfs_bytes_read_virtual: float
    pfs_read_accesses: int
    metadata_records: int
    #: Registry counter totals (family name → summed value) at snapshot time.
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def aggregate_cache_hit_rate(self) -> float:
        """Fleet-wide hit rate weighted by each server's actual lookup
        count (a server that answered 10k lookups counts 10k times more
        than one that answered one — resident-entry counts are not a
        usage proxy)."""
        hits = sum(s.cache_hits for s in self.servers)
        lookups = sum(s.cache_lookups for s in self.servers)
        return hits / lookups if lookups else 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean busy simulated seconds across alive servers (1.0 is
        perfectly balanced)."""
        busy = [s.busy_s for s in self.servers if s.alive]
        if not busy or max(busy) == 0:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0


#: Clock categories that are *not* work: idle barrier waits and the time
#: spent blocked inside collective rendezvous ("comm", see
#: ``SimClock.advance_to``).
_IDLE_CATEGORIES = frozenset({"wait", "comm"})


def snapshot(system: PDCSystem) -> SystemSnapshot:
    """Collect a structured status snapshot (no clock side effects)."""
    servers = []
    for s in system.servers:
        breakdown = s.clock.breakdown()
        busy = sum(v for k, v in breakdown.items() if k not in _IDLE_CATEGORIES)
        servers.append(
            ServerStats(
                server_id=s.server_id,
                alive=s.server_id not in system._failed_servers,
                sim_time_s=s.clock.now,
                busy_s=busy,
                time_breakdown=breakdown,
                cache_entries=len(s.cache),
                cache_used_vbytes=s.cache.used_bytes,
                cache_hit_rate=s.cache.stats.hit_rate,
                objects_with_metadata=len(s.meta_cached),
                cache_hits=s.cache.stats.hits,
                cache_lookups=s.cache.stats.hits + s.cache.stats.misses,
            )
        )
    metrics = {
        name: system.metrics.total(name)
        for name in _SNAPSHOT_METRICS
        if name in system.metrics.names()
    }
    return SystemSnapshot(
        n_servers=system.n_servers,
        n_alive=len(system.alive_servers),
        strategy=system.strategy.value,
        virtual_scale=system.cost.virtual_scale,
        elapsed_s=max(c.now for c in system.all_clocks()),
        servers=servers,
        n_objects=len(system.objects),
        n_regions_total=sum(o.n_regions for o in system.objects.values()),
        indexed_objects=sorted(
            n for n, o in system.objects.items() if o.indexes is not None
        ),
        replicas=sorted(system.replicas),
        pfs_files=len(system.pfs.listdir()),
        pfs_bytes_stored=system.pfs.total_bytes(),
        pfs_bytes_read_virtual=system.pfs.bytes_read,
        pfs_read_accesses=system.pfs.read_accesses,
        metadata_records=len(system.metadata),
        metrics=metrics,
    )


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if n < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} TiB"


def report(system: PDCSystem, top_servers: int = 8) -> str:
    """Human-readable deployment status."""
    snap = snapshot(system)
    lines = [
        f"PDC deployment: {snap.n_alive}/{snap.n_servers} servers alive, "
        f"strategy={snap.strategy}, virtual_scale={snap.virtual_scale:g}",
        f"simulated time: {snap.elapsed_s:.4f}s  "
        f"(load imbalance {snap.load_imbalance:.2f}x)",
        f"objects: {snap.n_objects} ({snap.n_regions_total} regions, "
        f"{snap.metadata_records} metadata records)",
        f"indexes: {', '.join(snap.indexed_objects) or 'none'}; "
        f"sorted replicas: {', '.join(snap.replicas) or 'none'}",
        f"storage: {snap.pfs_files} files, {_fmt_bytes(snap.pfs_bytes_stored)} "
        f"stored; {_fmt_bytes(snap.pfs_bytes_read_virtual)} virtual read in "
        f"{snap.pfs_read_accesses} accesses",
        f"cache: {snap.aggregate_cache_hit_rate * 100:.1f}% aggregate hit rate "
        f"over {sum(s.cache_lookups for s in snap.servers)} lookups",
    ]
    queries = snap.metrics.get("pdc_queries_total", 0.0)
    if queries:
        lines.append(
            f"queries: {queries:.0f} executed, "
            f"{snap.metrics.get('pdc_query_regions_read_total', 0.0):.0f} regions read, "
            f"{snap.metrics.get('pdc_query_regions_pruned_total', 0.0):.0f} pruned, "
            f"{snap.metrics.get('pdc_query_index_reads_total', 0.0):.0f} index probes"
        )
    lines.append("servers (busiest first):")
    ranked = sorted(snap.servers, key=lambda s: -s.busy_s)[:top_servers]
    for s in ranked:
        top = sorted(
            ((k, v) for k, v in s.time_breakdown.items() if k not in _IDLE_CATEGORIES),
            key=lambda kv: -kv[1],
        )[:3]
        cats = ", ".join(f"{k} {v * 1e3:.1f}ms" for k, v in top) or "idle"
        status = "" if s.alive else "  [FAILED]"
        lines.append(
            f"  server{s.server_id:<4} busy {s.busy_s * 1e3:8.2f}ms  "
            f"cache {s.cache_entries:4d} entries "
            f"({s.cache_hit_rate * 100:5.1f}% hits)  {cats}{status}"
        )
    if len(snap.servers) > top_servers:
        lines.append(f"  ... and {len(snap.servers) - top_servers} more")
    return "\n".join(lines)
