"""Metadata objects: object descriptors, key-value tags, and the global
histogram record.

§II: *"Each data object is associated with metadata, including a name, ID,
and other attributes ... In PDC, metadata is managed as an object too.  As
most metadata are naturally small ... they are pre-loaded at server start
time and stored as in-memory objects."*
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from typing import Any, Dict, List, Optional, Tuple

from ..errors import MetadataError
from ..histogram.global_hist import GlobalHistogram
from ..interval import Interval
from ..types import PDCType, QueryOp
from .region import RegionMeta

__all__ = ["ObjectMeta", "TagValue", "TagPredicate", "tag_matches"]

TagValue = Any

#: What a metadata query may assert about one tag: an exact value, a
#: numeric :class:`Interval`, or an ``(operator, value)`` pair using the
#: query operators ("RADEG" ≥ 150, ...).
TagPredicate = Any

_MISSING = object()


def tag_matches(value: TagValue, predicate: TagPredicate) -> bool:
    """Evaluate one tag predicate against one tag value."""
    if isinstance(predicate, Interval):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        return predicate.contains_value(float(value))
    if (
        isinstance(predicate, tuple)
        and len(predicate) == 2
        and isinstance(predicate[0], (str, QueryOp))
    ):
        op = predicate[0] if isinstance(predicate[0], QueryOp) else QueryOp(predicate[0])
        if op is QueryOp.EQ:
            return value == predicate[1]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        return bool(op.apply(np.asarray(value), predicate[1]))
    return value == predicate


@dataclass
class ObjectMeta:
    """Full metadata record of one PDC data object."""

    name: str
    object_id: int
    pdc_type: PDCType
    n_elements: int
    #: Logical (N-D) shape; None for plain 1-D byte-stream objects.
    dims: Optional[Tuple[int, ...]] = None
    container: str = "default"
    #: User key-value attributes (H5BOSS carries RADEG/DECDEG/PLATE/...).
    tags: Dict[str, TagValue] = field(default_factory=dict)
    #: Region descriptors, ascending by offset.
    regions: List[RegionMeta] = field(default_factory=list)
    #: Merged whole-object histogram (§III-D2 / §IV).
    global_histogram: Optional[GlobalHistogram] = None
    #: Name of the sorted-replica key object when a sorted copy exists
    #: (§III-D3 user hint).
    sorted_by: Optional[str] = None
    #: Logical creation timestamp (monotonic counter, not wall clock).
    created_at: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise MetadataError("object name must be non-empty")
        if self.n_elements <= 0:
            raise MetadataError(f"object {self.name!r} must have elements")

    # -------------------------------------------------------------- accessors
    @property
    def nbytes(self) -> int:
        """Payload size of the object."""
        return self.n_elements * self.pdc_type.itemsize

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    def region_by_id(self, region_id: int) -> RegionMeta:
        for r in self.regions:
            if r.region_id == region_id:
                return r
        raise MetadataError(f"object {self.name!r} has no region {region_id}")

    def regions_overlapping(self, start: int, stop: int) -> List[RegionMeta]:
        """Regions intersecting a coordinate range (spatial constraint)."""
        return [r for r in self.regions if r.overlaps_coords(start, stop)]

    def matches_tags(self, conditions: Dict[str, TagPredicate]) -> bool:
        """Key-value metadata predicate (§VI-C).

        Each condition value may be an exact value (``RADEG=153.17 AND
        DECDEG=23.06``, the paper's form), a numeric
        :class:`~repro.interval.Interval`, or an ``(op, value)`` pair —
        e.g. ``{"MJD": (">=", 55000)}``.
        """
        for k, predicate in conditions.items():
            v = self.tags.get(k, _MISSING)
            if v is _MISSING or not tag_matches(v, predicate):
                return False
        return True

    # ---------------------------------------------------------- serialization
    def summary(self) -> Dict[str, Any]:
        """Small transport-friendly summary (no region payload metadata)."""
        return {
            "name": self.name,
            "object_id": self.object_id,
            "pdc_type": self.pdc_type.value,
            "n_elements": self.n_elements,
            "dims": self.dims,
            "container": self.container,
            "tags": dict(self.tags),
            "n_regions": self.n_regions,
            "sorted_by": self.sorted_by,
        }
