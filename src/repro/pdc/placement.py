"""Region-to-server assignment policies.

§III-C: *"Upon the receipt of a query request, different regions of the
queried object are assigned to the servers in a load-balanced fashion."*
Three policies are provided; round-robin is the default (it balances both
element counts and storage locality for equal-size regions, which is the
common case).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence

from ..errors import PDCError
from .region import RegionMeta

__all__ = ["round_robin", "block", "least_loaded", "POLICIES"]

Assignment = Dict[int, List[RegionMeta]]


def _check(regions: Sequence[RegionMeta], n_servers: int) -> None:
    if n_servers < 1:
        raise PDCError("need at least one server")


def round_robin(regions: Sequence[RegionMeta], n_servers: int) -> Assignment:
    """Region ``i`` goes to server ``i mod n_servers``."""
    _check(regions, n_servers)
    out: Assignment = {s: [] for s in range(n_servers)}
    for i, r in enumerate(regions):
        out[i % n_servers].append(r)
    return out


def block(regions: Sequence[RegionMeta], n_servers: int) -> Assignment:
    """Contiguous blocks of regions per server (maximizes each server's
    read contiguity, at the cost of skew when surviving regions cluster)."""
    _check(regions, n_servers)
    out: Assignment = {s: [] for s in range(n_servers)}
    n = len(regions)
    base, extra = divmod(n, n_servers)
    start = 0
    for s in range(n_servers):
        count = base + (1 if s < extra else 0)
        out[s] = list(regions[start : start + count])
        start += count
    return out


def least_loaded(regions: Sequence[RegionMeta], n_servers: int) -> Assignment:
    """Greedy longest-processing-time balancing on region element counts —
    useful when regions have uneven sizes (the tail region, sorted-replica
    runs)."""
    _check(regions, n_servers)
    out: Assignment = {s: [] for s in range(n_servers)}
    heap = [(0, s) for s in range(n_servers)]
    heapq.heapify(heap)
    for r in sorted(regions, key=lambda r: -r.n_elements):
        load, s = heapq.heappop(heap)
        out[s].append(r)
        heapq.heappush(heap, (load + r.n_elements, s))
    for s in out:
        out[s].sort(key=lambda r: r.region_id)
    return out


POLICIES = {
    "round_robin": round_robin,
    "block": block,
    "least_loaded": least_loaded,
}
