"""Region-to-server assignment policies.

§III-C: *"Upon the receipt of a query request, different regions of the
queried object are assigned to the servers in a load-balanced fashion."*
Three policies are provided; round-robin is the default (it balances both
element counts and storage locality for equal-size regions, which is the
common case).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import PDCError
from .region import RegionMeta

__all__ = [
    "round_robin",
    "block",
    "least_loaded",
    "POLICIES",
    "assign_region_ids",
    "incremental_assign",
]

Assignment = Dict[int, List[RegionMeta]]


def _check(regions: Sequence[RegionMeta], n_servers: int) -> None:
    if n_servers < 1:
        raise PDCError("need at least one server")


def round_robin(regions: Sequence[RegionMeta], n_servers: int) -> Assignment:
    """Region ``i`` goes to server ``i mod n_servers``."""
    _check(regions, n_servers)
    out: Assignment = {s: [] for s in range(n_servers)}
    for i, r in enumerate(regions):
        out[i % n_servers].append(r)
    return out


def block(regions: Sequence[RegionMeta], n_servers: int) -> Assignment:
    """Contiguous blocks of regions per server (maximizes each server's
    read contiguity, at the cost of skew when surviving regions cluster)."""
    _check(regions, n_servers)
    out: Assignment = {s: [] for s in range(n_servers)}
    n = len(regions)
    base, extra = divmod(n, n_servers)
    start = 0
    for s in range(n_servers):
        count = base + (1 if s < extra else 0)
        out[s] = list(regions[start : start + count])
        start += count
    return out


def least_loaded(regions: Sequence[RegionMeta], n_servers: int) -> Assignment:
    """Greedy longest-processing-time balancing on region element counts —
    useful when regions have uneven sizes (the tail region, sorted-replica
    runs)."""
    _check(regions, n_servers)
    out: Assignment = {s: [] for s in range(n_servers)}
    heap = [(0, s) for s in range(n_servers)]
    heapq.heapify(heap)
    for r in sorted(regions, key=lambda r: -r.n_elements):
        load, s = heapq.heappop(heap)
        out[s].append(r)
        heapq.heappush(heap, (load + r.n_elements, s))
    for s in out:
        out[s].sort(key=lambda r: r.region_id)
    return out


POLICIES = {
    "round_robin": round_robin,
    "block": block,
    "least_loaded": least_loaded,
}


def assign_region_ids(
    region_ids: np.ndarray,
    n_targets: int,
    policy: str = "round_robin",
    weights: Sequence[float] = (),
    current: Optional[Sequence[Sequence[int]]] = None,
) -> List[np.ndarray]:
    """Split bare region ids across ``n_targets`` servers by policy name.

    Failover helper: when a server dies mid-query its region share is
    re-assigned across the survivors with the same policies that place
    ordinary work, but operating on ids (no :class:`RegionMeta` needed).
    ``weights`` optionally seeds ``least_loaded`` with each target's
    existing load so failover work goes to the idlest survivors first.
    Ids within each share keep ascending order (deterministic).

    ``policy="incremental"`` dispatches to :func:`incremental_assign`,
    which keeps regions where ``current`` already placed them and moves
    only what balance requires (stable assignment under view change).
    """
    if n_targets < 1:
        raise PDCError("need at least one target server")
    if policy == "incremental":
        return incremental_assign(region_ids, n_targets, current=current)
    if policy not in POLICIES:
        raise PDCError(f"unknown placement policy {policy!r}")
    ids = np.asarray(region_ids, dtype=np.int64)
    out: List[List[int]] = [[] for _ in range(n_targets)]
    if policy == "round_robin":
        for i, rid in enumerate(ids):
            out[i % n_targets].append(int(rid))
    elif policy == "block":
        base, extra = divmod(ids.size, n_targets)
        start = 0
        for s in range(n_targets):
            count = base + (1 if s < extra else 0)
            out[s] = [int(r) for r in ids[start : start + count]]
            start += count
    else:  # least_loaded: LPT on unit weights, seeded with existing load
        heap = [
            (float(weights[s]) if s < len(weights) else 0.0, s)
            for s in range(n_targets)
        ]
        heapq.heapify(heap)
        for rid in ids:
            load, s = heapq.heappop(heap)
            out[s].append(int(rid))
            heapq.heappush(heap, (load + 1.0, s))
    return [np.asarray(sorted(share), dtype=np.int64) for share in out]


def incremental_assign(
    region_ids: np.ndarray,
    n_targets: int,
    current: Optional[Sequence[Sequence[int]]] = None,
) -> List[np.ndarray]:
    """Stable re-assignment: keep regions where they are, move the minimum.

    ``current`` gives each target's existing share (position ``s`` holds
    the ids target ``s`` owns now; targets beyond ``len(current)`` are
    new and start empty).  The result covers exactly ``region_ids``,
    every share stays within one region of the even split, and a region
    only moves when its current owner is over quota or no longer exists.
    A no-op view change (``current`` already covering ``region_ids``
    with balanced shares over the same target count) moves **zero**
    regions — the property consistent hashing is built for, done here by
    explicit quota trimming so the result is exact, not probabilistic.

    Determinism: overfull owners surrender their *largest* ids first and
    orphans are placed ascending onto the least-loaded target (ties to
    the lowest target index), so the outcome is a pure function of the
    inputs.
    """
    if n_targets < 1:
        raise PDCError("need at least one target server")
    ids = np.asarray(region_ids, dtype=np.int64)
    wanted = {int(r) for r in ids}
    base, extra = divmod(ids.size, n_targets)
    ceil_quota = base + (1 if extra else 0)

    kept: List[List[int]] = [[] for _ in range(n_targets)]
    seen: set = set()
    if current is not None:
        for s in range(min(len(current), n_targets)):
            for rid in sorted(int(r) for r in current[s]):
                if rid in wanted and rid not in seen:
                    kept[s].append(rid)
                    seen.add(rid)
    # Trim overfull owners: surrender largest ids (any choice is one
    # move each; largest-first is stable).  At most `extra` targets may
    # keep ceil_quota — if more do, the highest-index ones give one up,
    # so an already-balanced layout (in any permutation) trims nothing.
    orphans: List[int] = sorted(wanted - seen)
    for s in range(n_targets):
        while len(kept[s]) > ceil_quota:
            orphans.append(kept[s].pop())
    at_ceil = [s for s in range(n_targets) if len(kept[s]) == ceil_quota]
    if ceil_quota > base:
        for s in reversed(at_ceil[extra:]):
            orphans.append(kept[s].pop())
    orphans.sort()
    heap = [(len(kept[s]), s) for s in range(n_targets)]
    heapq.heapify(heap)
    for rid in orphans:
        while True:
            load, s = heapq.heappop(heap)
            if load != len(kept[s]):  # stale heap entry
                heapq.heappush(heap, (len(kept[s]), s))
                continue
            break
        kept[s].append(rid)
        heapq.heappush(heap, (len(kept[s]), s))
    return [np.asarray(sorted(share), dtype=np.int64) for share in kept]
