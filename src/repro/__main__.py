"""Command-line interface: ``python -m repro <command>``.

Gives the open-source release a zero-code entry point:

* ``python -m repro fig3|fig4|fig5|fig6|index-size`` — regenerate a paper
  figure's table at a chosen scale;
* ``python -m repro all`` — every figure;
* ``python -m repro selftest`` — a fast end-to-end sanity check (all
  strategies vs ground truth on fresh synthetic data); ``--report``
  additionally prints the deployment status report, ``--trace FILE``
  writes a Chrome trace of the run;
* ``python -m repro trace <demo-query> --out trace.json`` — run one demo
  query with tracing enabled and export a Perfetto-loadable timeline;
* ``python -m repro metrics`` — run a demo workload and print the metrics
  registry in Prometheus text exposition format;
* ``python -m repro faults`` — run the demo workload under deterministic
  fault injection (PFS read errors, stragglers, server crashes, message
  drops) and report retries, failovers, and degraded results;
* ``python -m repro batch`` — shared-scan batching demo: bytes read by a
  window of overlapping queries, isolated vs batched;
* ``python -m repro explain <demo-query>`` — the planner's plan
  (evaluation order, selectivity, access paths); ``--analyze``
  additionally runs the query and annotates each step with measured
  actuals (EXPLAIN ANALYZE);
* ``python -m repro profile <demo-query>`` — per-server utilization,
  imbalance/straggler ranking, critical path, and flamegraph export
  (collapsed stacks / speedscope);
* ``python -m repro benchcheck`` — run the deterministic micro-suite and
  fail on any drift from the committed ``BENCH_*.json`` baseline;
* ``python -m repro serve`` — multi-tenant query-service demo: open-loop
  seeded arrivals through admission control and fair-share dispatch, with
  a per-tenant SLO table (``--smoke`` re-runs the same seed and fails on
  any nondeterminism);
* ``python -m repro info`` — version, scale presets, strategy list.
"""

from __future__ import annotations

import argparse
import os
import sys


def _add_scale_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale",
        choices=("tiny", "small", "full"),
        default="small",
        help="benchmark scale preset (default: small)",
    )


def cmd_figures(args: argparse.Namespace) -> int:
    from .bench.figures import run_fig3, run_fig4, run_fig5, run_fig6, run_index_size
    from .bench.harness import SCALES
    from .types import MB

    scale = SCALES[args.scale]
    which = args.command
    if which in ("fig3", "all"):
        sizes = (
            [int(s) * MB for s in args.region_sizes.split(",")]
            if getattr(args, "region_sizes", None)
            else None
        )
        run_fig3(scale, **({"region_sizes": sizes} if sizes else {}))
    if which in ("fig4", "all"):
        run_fig4(scale)
    if which in ("fig5", "all"):
        run_fig5(scale)
    if which in ("fig6", "all"):
        run_fig6(scale)
    if which in ("index-size", "all"):
        run_index_size(scale)
    return 0


def _demo_deployment(metrics=None):
    """The small two-object deployment shared by selftest/trace/metrics:
    an indexed, replica-backed system plus the demo condition tree and its
    ground-truth hit count.  Also the bench-regression micro-suite's
    deployment — defined there so both stay one system."""
    from .obs.regress import demo_deployment

    return demo_deployment(metrics=metrics)


def _selftest_faults() -> int:
    """Fault-enabled selftest leg: deterministic injection must keep every
    *complete* result exact, and the same seed must reproduce the same
    retries/failovers/answer bit for bit."""
    from .faults import FaultConfig, FaultPlan
    from .query.executor import QueryEngine
    from .strategies import Strategy

    config = FaultConfig(
        pfs_read_error_rate=0.05,
        pfs_slow_rate=0.05,
        server_slow_rate=0.1,
        msg_drop_rate=0.02,
    )
    failures = 0
    runs = []
    for _ in range(2):  # identical seed twice: must be bit-identical
        system, node, truth = _demo_deployment()
        system.set_fault_plan(FaultPlan(seed=1234, config=config))
        engine = QueryEngine(system)
        run = []
        for strategy in Strategy:
            res = engine.execute(node, strategy=strategy)
            run.append((res.nhits, res.retries, res.complete, res.elapsed_s))
        runs.append(run)
    for strategy, (nhits, retries, complete, elapsed_s) in zip(Strategy, runs[0]):
        ok = nhits == truth if complete else nhits <= truth
        failures += not ok
        tag = "ok" if ok else "FAIL"
        if complete and ok:
            detail = f"{retries} retries"
        else:
            detail = "DEGRADED" if not complete else "wrong answer"
        print(
            f"  faults {strategy.paper_label:<9} {nhits:>6} hits "
            f"({elapsed_s * 1e3:7.2f} simulated ms, {detail})  {tag}"
        )
    if runs[0] != runs[1]:
        failures += 1
        print("  faults determinism      same seed diverged  FAIL")
    else:
        print("  faults determinism      same seed, same run  ok")
    return failures


def _selftest_batch() -> int:
    """Shared-scan batch leg: a window of overlapping threshold queries
    must match ground truth while reading strictly fewer bytes than the
    same queries on fresh deployments, and an exact repeat must be served
    by the semantic selection cache with zero I/O."""
    import numpy as np

    from .query.ast import Condition
    from .query.executor import QueryEngine
    from .query.scheduler import QueryScheduler
    from .types import PDCType, QueryOp

    failures = 0
    thresholds = [0.5, 1.0, 1.5, 2.0]
    queries = [
        Condition("energy", QueryOp.GT, PDCType.FLOAT, t) for t in thresholds
    ]

    # Isolated baseline: each query on its own cold deployment.
    isolated_bytes = 0.0
    truths = []
    for q in queries:
        system, _, _ = _demo_deployment()
        res = QueryEngine(system).execute(q)
        isolated_bytes += res.bytes_read_virtual
        truths.append(res.nhits)

    system, node, truth = _demo_deployment()
    e = system.get_object("energy").data
    sched = QueryScheduler(system, max_width=len(queries))
    results = sched.run(queries)
    batch = sched.batches[0]
    answers_ok = all(
        r.nhits == int((e > t).sum()) and r.nhits == tn
        for r, t, tn in zip(results, thresholds, truths)
    )
    bytes_ok = batch.total_bytes_read_virtual < isolated_bytes
    ok = answers_ok and bytes_ok and batch.shared_reads > 0
    failures += not ok
    print(
        f"  batch x{batch.width} shared      {batch.shared_reads:>3} shared reads, "
        f"{batch.total_bytes_read_virtual / 1024:.0f} vs "
        f"{isolated_bytes / 1024:.0f} KiB isolated  {'ok' if ok else 'FAIL'}"
    )

    # Exact repeat: every answer comes from the semantic cache.
    repeat = sched.run(queries)
    ok = all(r.semantic_cache == "hit" for r in repeat) and [
        r.nhits for r in repeat
    ] == truths
    failures += not ok
    print(
        f"  batch semantic repeat   {sum(r.semantic_cache == 'hit' for r in repeat)}"
        f"/{len(repeat)} exact hits  {'ok' if ok else 'FAIL'}"
    )

    # Narrowing: a tighter interval is filtered from a cached superset.
    narrow = sched.run(
        [Condition("energy", QueryOp.GT, PDCType.FLOAT, 5.0)]
    )[0]
    ok = narrow.semantic_cache == "narrowed" and narrow.nhits == int(
        (e > np.float32(5.0)).sum()
    )
    failures += not ok
    print(
        f"  batch semantic narrow   {narrow.nhits:>6} hits "
        f"({narrow.semantic_cache or 'miss'})  {'ok' if ok else 'FAIL'}"
    )
    sched.close()
    return failures


def _selftest_service() -> int:
    """Query-service leg: the passthrough config must be bit-identical to
    driving the scheduler directly, and a multi-tenant WFQ config must
    reproduce its admission/dispatch decisions exactly across runs."""
    from .query.ast import Condition
    from .query.scheduler import QueryScheduler
    from .service import QueryService, ServiceConfig, Tenant
    from .types import PDCType, QueryOp

    failures = 0
    queries = [
        Condition("energy", QueryOp.GT, PDCType.FLOAT, 0.5 + 0.25 * i)
        for i in range(8)
    ]

    # Passthrough: twin deployments, one driven directly, one through a
    # single-tenant/FIFO/no-limit service.
    system_a, _, _ = _demo_deployment()
    sched = QueryScheduler(system_a, max_width=4, use_selection_cache=False)
    direct = sched.run(list(queries))
    sched.close()
    system_b, _, _ = _demo_deployment()
    with QueryService(system_b, ServiceConfig(batch_window=4)) as svc:
        served = svc.run("default", list(queries))
    ok = (
        [(r.nhits, r.elapsed_s, r.bytes_read_virtual) for r in direct]
        == [(r.nhits, r.elapsed_s, r.bytes_read_virtual) for r in served]
        and [c.now for c in system_a.all_clocks()]
        == [c.now for c in system_b.all_clocks()]
    )
    failures += not ok
    print(f"  service passthrough     bit-identical twin run  "
          f"{'ok' if ok else 'FAIL'}")

    # Multi-tenant WFQ: same submissions twice must make identical
    # decisions, and the heavy tenant must not starve the light one.
    def run_once():
        system, _, _ = _demo_deployment()
        cfg = ServiceConfig(
            tenants=(
                Tenant("heavy", weight=3.0),
                Tenant("light", weight=1.0),
                Tenant("limited", rate_limit_qps=0.5, burst=1.0, queue_cap=2),
            ),
            policy="wfq",
            batch_window=1,
        )
        svc = QueryService(system, cfg)
        t0 = max(c.now for c in system.all_clocks())
        tenants = ["heavy", "heavy", "heavy", "light", "limited", "limited"]
        tickets = [
            svc.submit(tenants[i % len(tenants)], q, arrival_s=t0 + 1e-3 * i)
            for i, q in enumerate(queries + queries)
        ]
        order = [r.tenant.name for r in svc.drain() if r.status == "done"]
        svc.close()
        return [(t.status, t.reject_reason) for t in tickets], order

    (dec1, order1), (dec2, order2) = run_once(), run_once()
    ok = dec1 == dec2 and order1 == order2
    failures += not ok
    print(f"  service determinism     same config, same decisions  "
          f"{'ok' if ok else 'FAIL'}")
    light_served = order1.count("light")
    ok = light_served > 0 and any(s == "rejected" for s, _ in dec1)
    failures += not ok
    print(f"  service wfq+admission   light served {light_served}x, "
          f"{sum(s == 'rejected' for s, _ in dec1)} rejected  "
          f"{'ok' if ok else 'FAIL'}")
    return failures


def _selftest_monitor() -> int:
    """Continuous-telemetry leg: the shared overload scenario must fire a
    fast-burn alert and clear it, replay byte-identically, and cost
    nothing when the monitor is disabled."""
    from .obs.monitor import demo_monitor_run

    failures = 0
    run1 = demo_monitor_run()
    run2 = demo_monitor_run()
    fp1, fp2 = run1.monitor.fingerprint(), run2.monitor.fingerprint()
    ok = fp1 == fp2 and len(run1.alerts) > 0
    failures += not ok
    print(f"  monitor determinism     {len(run1.alerts)} alerts, "
          f"fingerprint {fp1[:12]}  {'ok' if ok else 'FAIL'}")

    kinds = {(a.window, a.kind) for a in run1.alerts}
    ok = ("fast", "fire") in kinds and ("fast", "clear") in kinds
    failures += not ok
    print(f"  monitor burn cycle      fast-burn fire+clear  "
          f"{'ok' if ok else 'FAIL'}")

    off = demo_monitor_run(monitored=False)
    on = run1
    ok = (
        [(t.status, t.reject_reason) for t in off.tickets]
        == [(t.status, t.reject_reason) for t in on.tickets]
        and off.t_end == on.t_end
    )
    failures += not ok
    print(f"  monitor zero-cost       disabled vs enabled bit-identical  "
          f"{'ok' if ok else 'FAIL'}")
    return failures


def cmd_serve(args: argparse.Namespace) -> int:
    """Multi-tenant query-service demo: open-loop seeded arrivals against
    the demo deployment, per-tenant SLO table out."""
    import numpy as np

    from .query.ast import Condition
    from .service import QueryService, ServiceConfig, Tenant
    from .types import PDCType, QueryOp

    def run_once():
        system, _, _ = _demo_deployment()
        cfg = ServiceConfig(
            tenants=(
                Tenant("batch", weight=1.0, queue_deadline_s=0.0003),
                Tenant("interactive", weight=4.0, default_timeout_s=0.5),
                Tenant("adhoc", weight=1.0, rate_limit_qps=200.0, burst=4.0,
                       queue_cap=8),
            ),
            policy=args.policy,
            batch_window=args.window,
        )
        svc = QueryService(system, cfg)
        rng = np.random.default_rng(args.seed)
        t = max(c.now for c in system.all_clocks())
        names = [ten.name for ten in cfg.tenants]
        tickets = []
        for _ in range(args.requests):
            t += float(rng.exponential(1.0 / args.rate))
            tenant = names[int(rng.integers(len(names)))]
            q = Condition(
                "energy", QueryOp.GT, PDCType.FLOAT,
                float(np.float32(rng.uniform(0.5, 3.0))),
            )
            tickets.append(svc.submit(tenant, q, arrival_s=t))
        svc.drain()
        svc.close()
        return svc, tickets

    svc, tickets = run_once()
    print(f"query-service demo: {args.requests} requests, policy "
          f"{args.policy}, window {args.window}, seed {args.seed}")
    print(f"  {'tenant':<12} {'admit':>6} {'rej':>4} {'shed':>5} "
          f"{'done':>5} {'degr':>5} {'t/o':>4} {'avg wait ms':>12} "
          f"{'max wait ms':>12}")
    for name, st in sorted(svc.stats.items()):
        avg_wait = st.queue_wait_total_s / st.dispatched if st.dispatched else 0.0
        print(f"  {name:<12} {st.admitted:>6} "
              f"{st.rejected_rate + st.rejected_queue:>4} {st.shed:>5} "
              f"{st.done:>5} {st.degraded:>5} {st.timed_out:>4} "
              f"{avg_wait * 1e3:>12.3f} {st.queue_wait_max_s * 1e3:>12.3f}")
    hung = [t for t in tickets if not t.finished]
    if hung:
        print(f"  {len(hung)} requests left non-terminal  FAIL")
        return 1
    if args.smoke:
        svc2, tickets2 = run_once()
        same = [(t.status, t.reject_reason) for t in tickets] == [
            (t.status, t.reject_reason) for t in tickets2
        ] and {n: s.queue_wait_total_s for n, s in svc.stats.items()} == {
            n: s.queue_wait_total_s for n, s in svc2.stats.items()
        }
        served = sum(1 for t in tickets if t.status == "done")
        print(f"  smoke: {served} served, determinism "
              f"{'ok' if same else 'FAIL'}")
        if not same or served == 0:
            return 1
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Continuous-telemetry demo: run the deterministic overload scenario,
    print the per-tenant SLO/burn status table, optionally replay the run
    frame by frame (``--watch``) and export OpenMetrics/JSONL artifacts."""
    from .obs.export import (
        render_openmetrics,
        replay_frames,
        write_alerts_jsonl,
    )
    from .obs.monitor import demo_monitor_run

    run = demo_monitor_run(seed=args.seed, requests=args.requests)
    mon = run.monitor
    print(f"monitor demo: {args.requests} requests, seed {args.seed}, "
          f"{run.t_end * 1e3:.3f} simulated ms, "
          f"{len(run.alerts)} alert transitions")
    if args.watch:
        for frame in replay_frames(
            mon.recorder, run.alerts, step_s=args.step
        ):
            print(frame)
        print()
    print(mon.render_status(run.t_end))
    if run.alerts:
        print("alert stream:")
        for a in run.alerts:
            print(f"  {a.t_s * 1e3:9.3f} ms  {a.kind.upper():<5} "
                  f"{a.slo} [{a.window}] burn={a.burn_rate:.2f} "
                  f"budget_used={a.budget_used * 100:.1f}%")
    print(f"alert fingerprint: {mon.fingerprint()}")
    if args.openmetrics:
        with open(args.openmetrics, "w", encoding="utf-8") as f:
            f.write(
                render_openmetrics(
                    registry=run.system.metrics,
                    recorder=mon.recorder,
                    slo_monitor=mon.slo,
                    t_end=run.t_end,
                ) + "\n"
            )
        print(f"openmetrics exposition -> {args.openmetrics}")
    if args.series:
        mon.recorder.write_jsonl(args.series)
        print(f"{mon.recorder.total_samples()} samples -> {args.series}")
    if args.alerts:
        write_alerts_jsonl(run.alerts, args.alerts)
        print(f"{len(run.alerts)} alert records -> {args.alerts}")
    if args.smoke:
        run2 = demo_monitor_run(seed=args.seed, requests=args.requests)
        same = run2.monitor.fingerprint() == mon.fingerprint()
        kinds = {(a.window, a.kind) for a in run.alerts}
        cycled = ("fast", "fire") in kinds and ("fast", "clear") in kinds
        print(f"  smoke: determinism {'ok' if same else 'FAIL'}, "
              f"fast-burn cycle {'ok' if cycled else 'FAIL'}")
        if not (same and cycled):
            return 1
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Elastic-scaling demo: the load-doubling scenario where the
    autoscaler grows the fleet off the monitor's queue-wait p99 and the
    tail latency recovers, with every region migration charged in
    simulated time."""
    from .cluster.demo import demo_cluster_run

    run = demo_cluster_run(
        seed=args.seed,
        requests=args.requests,
        n_servers=args.servers,
        max_servers=args.max_servers,
    )
    print(run.render())
    if run.alerts:
        print("alert stream:")
        for a in run.alerts:
            print(f"  {a.t_s * 1e3:9.3f} ms  {a.kind.upper():<5} "
                  f"{a.slo} [{a.window}] burn={a.burn_rate:.2f}")
    print("membership events:")
    for ev in run.system.membership.events:
        print(f"  {ev.t_s * 1e3:9.3f} ms  gen {ev.generation:<3} "
              f"server {ev.server_id:<3} {ev.kind:<12} -> {ev.state}")
    print(f"run fingerprint: {run.fingerprint()}")
    if args.series:
        run.monitor.recorder.write_jsonl(args.series)
        print(f"{run.monitor.recorder.total_samples()} samples -> {args.series}")
    if args.smoke:
        run2 = demo_cluster_run(
            seed=args.seed,
            requests=args.requests,
            n_servers=args.servers,
            max_servers=args.max_servers,
        )
        same = run2.fingerprint() == run.fingerprint()
        scaled = run.n_scale_out >= 1
        print(f"  smoke: determinism {'ok' if same else 'FAIL'}, "
              f"scale-out {'ok' if scaled else 'FAIL'}, "
              f"p99 recovery {'ok' if run.recovered else 'FAIL'}")
        if not (same and scaled and run.recovered):
            return 1
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    """Compare a window of overlapping queries run isolated vs batched."""
    from .query.ast import Condition
    from .query.executor import QueryEngine
    from .query.scheduler import QueryScheduler
    from .types import PDCType, QueryOp

    n_queries = args.queries
    thresholds = [0.25 + 0.25 * i for i in range(n_queries)]
    queries = [
        Condition("energy", QueryOp.GT, PDCType.FLOAT, t) for t in thresholds
    ]

    workers = getattr(args, "workers", 0) or 0
    isolated_bytes = 0.0
    isolated_s = 0.0
    for q in queries:
        system, _, _ = _demo_deployment()
        with QueryEngine(system, workers=workers) as engine:
            res = engine.execute(q)
        isolated_bytes += res.bytes_read_virtual
        isolated_s += res.elapsed_s

    system, _, _ = _demo_deployment()
    sched = QueryScheduler(system, max_width=args.width, workers=workers)
    results = sched.run(queries)
    batched_bytes = sum(b.total_bytes_read_virtual for b in sched.batches)
    sched.close()

    print(f"shared-scan batching demo ({n_queries} overlapping queries, "
          f"window {args.width})")
    print(f"  isolated: {isolated_bytes / 1024:10.1f} KiB read, "
          f"{isolated_s * 1e3:8.2f} simulated ms")
    print(f"  batched:  {batched_bytes / 1024:10.1f} KiB read, "
          f"{sum(b.elapsed_s for b in sched.batches) * 1e3:8.2f} simulated ms")
    shared = sum(b.shared_reads for b in sched.batches)
    saved = sum(b.saved_bytes_virtual for b in sched.batches)
    print(f"  shared reads: {shared}, bytes saved vs per-query reads: "
          f"{saved / 1024:.1f} KiB")
    print(f"  answers: {[r.nhits for r in results]}")
    return 0 if batched_bytes <= isolated_bytes else 1


def cmd_selftest(args: argparse.Namespace) -> int:
    from .obs import Tracer
    from .query.executor import QueryEngine
    from .strategies import Strategy

    system, node, truth = _demo_deployment()
    trace_path = getattr(args, "trace", None)
    if trace_path:
        system.set_tracer(Tracer())
    engine = QueryEngine(system, workers=getattr(args, "workers", 0) or 0)
    failures = 0
    for strategy in Strategy:
        res = engine.execute(node, strategy=strategy)
        status = "ok" if res.nhits == truth else "FAIL"
        failures += status == "FAIL"
        used = res.strategy.paper_label
        print(
            f"  {strategy.paper_label:<9} -> {used:<8} {res.nhits:>6} hits "
            f"({res.elapsed_s * 1e3:7.2f} simulated ms)  {status}"
        )
    engine.close()
    # Distributed transport cross-check.
    from .pdc.transport import run_distributed_query

    wire = run_distributed_query(system, node, n_server_ranks=4)
    wire_ok = wire.size == truth
    failures += not wire_ok
    print(f"  simmpi wire path        {wire.size:>6} hits  {'ok' if wire_ok else 'FAIL'}")
    failures += _selftest_batch()
    if getattr(args, "faults", False):
        failures += _selftest_faults()
    if getattr(args, "service", False):
        failures += _selftest_service()
    if getattr(args, "monitor", False):
        failures += _selftest_monitor()
    if trace_path:
        system.tracer.write_chrome(trace_path)
        print(f"  trace: {len(system.tracer.spans)} spans -> {trace_path}")
    if getattr(args, "report", False):
        from .pdc.observability import report as status_report

        print()
        print(status_report(system, top_servers=4))
        print()
    print("selftest:", "PASS" if failures == 0 else f"FAIL ({failures})")
    return 1 if failures else 0


#: Demo queries for ``python -m repro trace``.
_TRACE_DEMOS = ("simple", "multi", "or")


def _demo_query(which: str):
    from .query.ast import Condition, combine_and, combine_or
    from .types import PDCType, QueryOp

    energy = Condition("energy", QueryOp.GT, PDCType.FLOAT, 2.0)
    x_lo = Condition("x", QueryOp.LT, PDCType.FLOAT, 150.0)
    x_hi = Condition("x", QueryOp.GT, PDCType.FLOAT, 290.0)
    if which == "simple":
        return energy
    if which == "multi":
        return combine_and(energy, x_lo)
    return combine_or(combine_and(energy, x_lo), x_hi)


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import Tracer
    from .query.executor import QueryEngine
    from .strategies import Strategy

    system, _, _ = _demo_deployment()
    tracer = Tracer()
    system.set_tracer(tracer)
    node = _demo_query(args.query)
    strategy = Strategy(args.strategy) if args.strategy else None
    res = QueryEngine(system).execute(node, strategy=strategy)
    tracer.write_chrome(args.out)
    if args.jsonl:
        tracer.write_jsonl(args.jsonl)
    print(
        f"{args.query} query ({res.strategy.paper_label}): {res.nhits} hits in "
        f"{res.elapsed_s * 1e3:.2f} simulated ms"
    )
    print(f"trace: {len(tracer.spans)} spans -> {args.out}"
          + (f" (+ JSONL {args.jsonl})" if args.jsonl else ""))
    summary = tracer.summary(res.trace)
    for cat in sorted(summary, key=summary.get, reverse=True):
        print(f"  {cat:<16} {summary[cat] * 1e3:9.3f} ms")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """EXPLAIN (plan only) or EXPLAIN ANALYZE (plan + run + join) a demo
    query."""
    from .query.planner import explain
    from .strategies import Strategy

    system, _, _ = _demo_deployment()
    node = _demo_query(args.query)
    strategy = Strategy(args.strategy) if args.strategy else None
    if not args.analyze:
        print(explain(system, node, strategy))
        return 0

    from .obs.analyze import analyze, render_analysis
    from .obs.profiler import write_collapsed, write_speedscope

    # No explicit --strategy: analyze the AUTO-chosen plan, matching what
    # plain `explain` showed.
    qa = analyze(system, node, strategy=strategy or Strategy.AUTO)
    print(render_analysis(qa, label=args.query))
    if args.flamegraph or args.speedscope:
        from .obs import Tracer

        tracer = Tracer()
        system2, _, _ = _demo_deployment()
        system2.set_tracer(tracer)
        from .query.executor import QueryEngine

        QueryEngine(system2).execute(node, strategy=qa.strategy)
        if args.flamegraph:
            write_collapsed(tracer, args.flamegraph)
            print(f"collapsed stacks -> {args.flamegraph}")
        if args.speedscope:
            write_speedscope(tracer, args.speedscope, name=args.query)
            print(f"speedscope profile -> {args.speedscope}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a demo query's trace: utilization, skew, critical path."""
    from .obs import Tracer
    from .obs.profiler import (
        profile,
        render_profile,
        write_collapsed,
        write_speedscope,
    )
    from .query.executor import QueryEngine
    from .strategies import Strategy

    if args.load:
        tracer = Tracer.read_jsonl(args.load)
        root = None
    else:
        system, _, _ = _demo_deployment()
        tracer = Tracer()
        system.set_tracer(tracer)
        node = _demo_query(args.query)
        strategy = Strategy(args.strategy) if args.strategy else None
        res = QueryEngine(system).execute(node, strategy=strategy)
        root = res.trace
        print(
            f"{args.query} query ({res.strategy.paper_label}): {res.nhits} "
            f"hits in {res.elapsed_s * 1e3:.2f} simulated ms"
        )
    print(render_profile(profile(tracer, root)))
    if args.flamegraph:
        write_collapsed(tracer, args.flamegraph, root)
        print(f"collapsed stacks -> {args.flamegraph}")
    if args.speedscope:
        write_speedscope(tracer, args.speedscope, root)
        print(f"speedscope profile -> {args.speedscope}")
    return 0


def cmd_benchcheck(args: argparse.Namespace) -> int:
    """Run the deterministic micro-suite and gate against the baseline."""
    from .obs.regress import benchcheck

    code, text = benchcheck(
        baseline_path=args.baseline,
        update=args.update,
        report_path=args.report,
        wallclock_workers=(
            args.workers if getattr(args, "wallclock", False) else None
        ),
        wallclock_profile=getattr(args, "profile", False),
        wallclock_baseline=getattr(args, "wallclock_baseline", None),
        min_speedup=getattr(args, "min_speedup", None),
    )
    print(text)
    if args.report:
        print(f"report -> {args.report}")
    return code


def cmd_parallel(args: argparse.Namespace) -> int:
    """Serial-vs-pool wall-clock comparison with a hard identity check,
    optional overhead-attribution profile, and the statistical gate."""
    from .obs.regress import (
        gate_wallclock,
        load_wallclock_baseline,
        render_wallclock,
        run_wallclock_suite,
        write_wallclock_baseline,
    )

    wc = run_wallclock_suite(
        workers=args.workers,
        elements=args.elements,
        queries=args.queries,
        repeats=args.repeats,
        trials=args.trials,
        warmup=args.warmup,
        profile=args.profile,
        trace_out=args.trace_out,
        speedscope_out=args.speedscope,
    )
    print("real-parallel hot-path execution "
          "(simulated results are bit-identical by construction)")
    print(f"  {render_wallclock(wc)}")
    print(f"  cpu_count={os.cpu_count()}; wall speedup is statistical — "
          "the hard-gated property is the fingerprint")
    if args.trace_out:
        print(f"  pool trace -> {args.trace_out}")
    if args.speedscope:
        print(f"  speedscope profile -> {args.speedscope}")

    if args.update_baseline:
        write_wallclock_baseline(
            args.baseline, wc, min_speedup=args.min_speedup or 0.0
        )
        print(f"  wall-clock baseline -> {args.baseline}")
        return 0 if wc["fingerprint_match"] else 1

    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_wallclock_baseline(args.baseline)
    code, gate_text = gate_wallclock(
        wc, baseline, min_speedup=args.min_speedup
    )
    print(gate_text)
    return code


def cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry
    from .query.executor import QueryEngine
    from .strategies import Strategy

    registry = MetricsRegistry()
    import numpy as np

    from .pdc import PDCConfig, PDCSystem
    from .query.ast import Condition, combine_and
    from .types import PDCType, QueryOp

    rng = np.random.default_rng(0)
    system = PDCSystem(
        PDCConfig(n_servers=4, region_size_bytes=1 << 13), metrics=registry
    )
    n = 1 << 14
    e = rng.gamma(2.0, 0.7, n).astype(np.float32)
    x = (rng.random(n) * 300).astype(np.float32)
    system.create_object("energy", e)
    system.create_object("x", x)
    system.build_index("energy")
    node = combine_and(
        Condition("energy", QueryOp.GT, PDCType.FLOAT, 2.0),
        Condition("x", QueryOp.LT, PDCType.FLOAT, 150.0),
    )
    engine = QueryEngine(system)
    for strategy in (Strategy.HISTOGRAM, Strategy.HIST_INDEX, Strategy.HISTOGRAM):
        engine.execute(node, strategy=strategy)
    print(registry.render(), end="")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from .faults import FaultConfig, FaultPlan
    from .obs import MetricsRegistry
    from .query.executor import QueryEngine
    from .strategies import Strategy

    config = FaultConfig(
        pfs_read_error_rate=args.pfs_error_rate,
        pfs_slow_rate=args.pfs_slow_rate,
        server_crash_rate=args.crash_rate,
        server_slow_rate=args.slow_rate,
        msg_drop_rate=args.drop_rate,
        msg_delay_rate=args.delay_rate,
        query_timeout_s=args.timeout,
    )
    registry = MetricsRegistry()
    system, node, truth = _demo_deployment(metrics=registry)
    plan = FaultPlan(seed=args.seed, config=config)
    system.set_fault_plan(plan)
    engine = QueryEngine(system)
    print(f"fault injection demo (seed {args.seed}, truth {truth} hits)")
    failures = 0
    for strategy in Strategy:
        res = engine.execute(node, strategy=strategy)
        if res.complete:
            ok = res.nhits == truth
            status = "ok" if ok else "FAIL"
            failures += not ok
        else:
            # Degraded answers must stay a subset of the truth.
            ok = res.nhits <= truth
            status = ("DEGRADED+timeout" if res.timed_out else "DEGRADED") if ok else "FAIL"
            failures += not ok
        print(
            f"  {strategy.paper_label:<9} {res.nhits:>6}/{truth} hits "
            f"{res.retries:>3} retries {res.failovers} failovers "
            f"({res.elapsed_s * 1e3:8.2f} simulated ms)  {status}"
        )
        for sid, errors in sorted(res.server_errors.items()):
            for err in errors:
                print(f"      server{sid}: {err}")
        # Crashed servers rejoin (cold) before the next strategy runs.
        for sid in sorted(system._failed_servers):
            system.recover_server(sid)
    # Wire-path leg: message drops are retransmitted deterministically.
    from .errors import TransportError
    from .pdc.transport import run_distributed_query

    try:
        wire = run_distributed_query(system, node, n_server_ranks=4)
        wire_ok = wire.size == truth
        failures += not wire_ok
        print(f"  simmpi wire {wire.size:>6}/{truth} hits  {'ok' if wire_ok else 'FAIL'}")
    except TransportError as exc:
        print(f"  simmpi wire gave up after retransmit budget: {exc}")
    print()
    print("injected faults by kind:")
    for kind, count in sorted(plan.snapshot().items()):
        print(f"  {kind:<18} {count}")
    if not plan.snapshot():
        print("  (none)")
    fault_metrics = [
        line
        for line in registry.render().splitlines()
        if ("fault" in line or "lost" in line or "degraded" in line
            or "timeout" in line or "dropped" in line or "delayed" in line)
        and not line.startswith("#")
    ]
    if fault_metrics:
        print()
        print("fault metrics:")
        for line in fault_metrics:
            print(f"  {line}")
    print()
    print("faults demo:", "PASS" if failures == 0 else f"FAIL ({failures})")
    return 1 if failures else 0


def cmd_info(args: argparse.Namespace) -> int:
    from . import __version__
    from .bench.harness import SCALES
    from .strategies import Strategy

    print(f"repro {__version__} — PDC-Query reproduction (IPDPS 2020)")
    print("strategies:", ", ".join(f"{s.value} ({s.paper_label})" for s in Strategy))
    print("scales:")
    for name, sc in SCALES.items():
        print(
            f"  {name:<6} {sc.vpic_particles:>9,} particles x scale "
            f"{sc.virtual_scale:>6.0f}, {sc.n_servers} servers, "
            f"{sc.boss_objects:,} BOSS objects"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PDC-Query reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("fig3", "single-object queries across region sizes (Fig. 3)"),
        ("fig4", "multi-object queries (Fig. 4)"),
        ("fig5", "BOSS metadata+data queries (Fig. 5)"),
        ("fig6", "server-count scaling (Fig. 6)"),
        ("index-size", "bitmap index storage footprint (§V)"),
        ("all", "every figure"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_scale_arg(p)
        if name in ("fig3", "all"):
            p.add_argument(
                "--region-sizes",
                help="comma-separated region sizes in MB (fig3 only), e.g. 4,32,128",
            )
        p.set_defaults(func=cmd_figures)

    p = sub.add_parser("selftest", help="fast end-to-end sanity check")
    p.add_argument(
        "--report", action="store_true",
        help="also print the deployment status report",
    )
    p.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome trace of the selftest queries to FILE",
    )
    p.add_argument(
        "--faults", action="store_true",
        help="also run the deterministic fault-injection leg",
    )
    p.add_argument(
        "--service", action="store_true",
        help="also run the query-service leg (passthrough bit-identity, "
             "WFQ determinism)",
    )
    p.add_argument(
        "--monitor", action="store_true",
        help="also run the continuous-telemetry leg (SLO burn-rate alert "
             "determinism, zero-cost when disabled)",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="evaluate hot kernels in a process pool of this size "
             "(results are bit-identical to serial; default: serial)",
    )
    p.set_defaults(func=cmd_selftest)

    p = sub.add_parser(
        "trace", help="run a demo query with tracing and export the timeline"
    )
    p.add_argument("query", choices=_TRACE_DEMOS, help="demo query to trace")
    p.add_argument(
        "--out", default="trace.json",
        help="Chrome trace_event JSON output path (default: trace.json)",
    )
    p.add_argument("--jsonl", help="also write a JSONL structured-event log")
    from .strategies import Strategy

    p.add_argument(
        "--strategy",
        choices=[s.value for s in Strategy],
        help="evaluation strategy (default: the deployment's)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "explain",
        help="show the planner's plan for a demo query "
             "(--analyze: run it and join estimates with actuals)",
    )
    p.add_argument("query", choices=_TRACE_DEMOS, help="demo query to explain")
    p.add_argument(
        "--analyze", action="store_true",
        help="execute the query and annotate the plan with measured actuals",
    )
    p.add_argument(
        "--strategy",
        choices=[s.value for s in Strategy],
        help="evaluation strategy (default: the deployment's)",
    )
    p.add_argument(
        "--flamegraph", metavar="FILE",
        help="with --analyze: write collapsed-stack flamegraph input to FILE",
    )
    p.add_argument(
        "--speedscope", metavar="FILE",
        help="with --analyze: write a speedscope JSON profile to FILE",
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "profile",
        help="utilization/skew/critical-path profile of a demo query trace",
    )
    p.add_argument(
        "query", choices=_TRACE_DEMOS, nargs="?", default="multi",
        help="demo query to profile (default: multi)",
    )
    p.add_argument(
        "--load", metavar="JSONL",
        help="profile a saved JSONL trace instead of running a demo query",
    )
    p.add_argument(
        "--strategy",
        choices=[s.value for s in Strategy],
        help="evaluation strategy (default: the deployment's)",
    )
    p.add_argument(
        "--flamegraph", metavar="FILE",
        help="write collapsed-stack flamegraph input to FILE",
    )
    p.add_argument(
        "--speedscope", metavar="FILE",
        help="write a speedscope JSON profile to FILE",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "benchcheck",
        help="deterministic micro-suite vs the committed BENCH baseline",
    )
    p.add_argument(
        "--baseline", default="BENCH_microsuite.json",
        help="baseline file (default: BENCH_microsuite.json)",
    )
    p.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline with the current numbers",
    )
    p.add_argument(
        "--report", metavar="FILE",
        help="also write a JSON report (metrics + per-metric verdicts)",
    )
    p.add_argument(
        "--wallclock", action="store_true",
        help="also run the serial-vs-pool wall-clock section (recorded in "
             "the report; only a fingerprint mismatch fails)",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="pool size for --wallclock (default: min(8, cpu_count))",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="with --wallclock: add the overhead-attribution profile "
             "(bucket decomposition, per-worker utilization)",
    )
    p.add_argument(
        "--wallclock-baseline", metavar="FILE",
        help="with --wallclock: statistical-gate baseline "
             "(BENCH_wallclock.json); skipped with a notice if the machine "
             "tag differs",
    )
    p.add_argument(
        "--min-speedup", type=float, default=None,
        help="with --wallclock: hard-fail if pool speedup drops below this "
             "floor (overrides the baseline's floor)",
    )
    p.set_defaults(func=cmd_benchcheck)

    p = sub.add_parser(
        "parallel",
        help="real-parallel hot-path demo: serial-vs-pool wall clock with "
             "a bit-identity check",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="pool size (default: min(8, cpu_count))",
    )
    p.add_argument(
        "--elements", type=int, default=1 << 21,
        help="elements per object (default: 2^21)",
    )
    p.add_argument(
        "--queries", type=int, default=6,
        help="distinct conjunct queries (default: 6)",
    )
    p.add_argument(
        "--repeats", type=int, default=1,
        help="passes over the query list (default: 1)",
    )
    p.add_argument(
        "--trials", type=int, default=3,
        help="measured trials per mode for the median/MAD summary "
             "(default: 3)",
    )
    p.add_argument(
        "--warmup", type=int, default=1,
        help="warm-up passes per mode, measured but excluded (default: 1)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="attach the dual-clock wall profiler: bucket decomposition, "
             "per-worker utilization, speedup-efficiency table",
    )
    p.add_argument(
        "--baseline", default="BENCH_wallclock.json",
        help="statistical-gate baseline file (default: BENCH_wallclock.json;"
             " skipped with a notice if absent or from another machine)",
    )
    p.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline with this machine's medians",
    )
    p.add_argument(
        "--min-speedup", type=float, default=None,
        help="hard-fail if pool speedup drops below this floor "
             "(overrides the baseline's floor)",
    )
    p.add_argument(
        "--trace-out", metavar="FILE",
        help="with --profile: write the joined pool trace as Chrome "
             "trace_event JSON to FILE",
    )
    p.add_argument(
        "--speedscope", metavar="FILE",
        help="with --profile: write a speedscope JSON profile to FILE",
    )
    p.set_defaults(func=cmd_parallel)

    p = sub.add_parser(
        "metrics", help="run a demo workload and print the metrics registry"
    )
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "faults",
        help="run the demo workload under deterministic fault injection",
    )
    p.add_argument("--seed", type=int, default=1234, help="fault plan seed")
    p.add_argument(
        "--pfs-error-rate", type=float, default=0.05,
        help="PFS extent read failure probability (default: 0.05)",
    )
    p.add_argument(
        "--pfs-slow-rate", type=float, default=0.05,
        help="PFS latency-spike probability (default: 0.05)",
    )
    p.add_argument(
        "--crash-rate", type=float, default=0.1,
        help="per-dispatch server crash probability (default: 0.1)",
    )
    p.add_argument(
        "--slow-rate", type=float, default=0.1,
        help="per-query server straggler probability (default: 0.1)",
    )
    p.add_argument(
        "--drop-rate", type=float, default=0.02,
        help="wire message drop probability (default: 0.02)",
    )
    p.add_argument(
        "--delay-rate", type=float, default=0.05,
        help="wire message delay probability (default: 0.05)",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-query simulated-seconds deadline (default: none)",
    )
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "batch",
        help="shared-scan batching demo: isolated vs batched overlapping queries",
    )
    p.add_argument(
        "--queries", type=int, default=8,
        help="number of overlapping threshold queries (default: 8)",
    )
    p.add_argument(
        "--width", type=int, default=8,
        help="batch window width (default: 8)",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="evaluate hot kernels in a process pool of this size "
             "(results are bit-identical to serial; default: serial)",
    )
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "serve",
        help="multi-tenant query-service demo (admission, fair share, SLOs)",
    )
    p.add_argument("--seed", type=int, default=1234, help="arrival RNG seed")
    p.add_argument(
        "--requests", type=int, default=60,
        help="number of open-loop requests (default: 60)",
    )
    p.add_argument(
        "--rate", type=float, default=400.0,
        help="aggregate arrival rate, queries per simulated second "
             "(default: 400)",
    )
    p.add_argument(
        "--policy", choices=("fifo", "priority", "wfq"), default="wfq",
        help="dispatch policy (default: wfq)",
    )
    p.add_argument(
        "--window", type=int, default=4,
        help="batch window width (default: 4)",
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="re-run with the same seed and fail on any nondeterminism",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "monitor",
        help="continuous-telemetry demo: SLO burn-rate alerts over a "
             "deterministic overload run (--watch: frame-by-frame replay)",
    )
    p.add_argument("--seed", type=int, default=1234, help="arrival RNG seed")
    p.add_argument(
        "--requests", type=int, default=150,
        help="number of open-loop requests (default: 150)",
    )
    p.add_argument(
        "--watch", action="store_true",
        help="replay the run frame by frame (per-tenant rates, queue-wait "
             "p99, alert transitions)",
    )
    p.add_argument(
        "--step", type=float, default=0.01,
        help="--watch frame width in simulated seconds (default: 0.01)",
    )
    p.add_argument(
        "--openmetrics", metavar="FILE",
        help="write the OpenMetrics exposition (cumulative + windowed + "
             "SLO gauges) to FILE",
    )
    p.add_argument(
        "--series", metavar="FILE",
        help="write the recorded time series as JSONL to FILE",
    )
    p.add_argument(
        "--alerts", metavar="FILE",
        help="write the alert stream as JSONL to FILE",
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="re-run with the same seed and fail on any nondeterminism "
             "or a missing fast-burn fire/clear cycle",
    )
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "cluster",
        help="elastic-scaling demo: membership, live region rebalancing, "
             "and the metrics-driven autoscaler on a load-doubling run",
    )
    p.add_argument("--seed", type=int, default=1234, help="arrival RNG seed")
    p.add_argument(
        "--requests", type=int, default=160,
        help="number of open-loop requests (default: 160)",
    )
    p.add_argument(
        "--servers", type=int, default=2,
        help="initial (and minimum) fleet size (default: 2)",
    )
    p.add_argument(
        "--max-servers", type=int, default=8,
        help="autoscaler fleet ceiling (default: 8)",
    )
    p.add_argument(
        "--series", metavar="FILE",
        help="write the recorded time series as JSONL to FILE",
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="re-run with the same seed and fail on nondeterminism, a "
             "missing scale-out, or an unrecovered p99",
    )
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser("info", help="version, strategies, scale presets")
    p.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
