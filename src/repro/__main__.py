"""Command-line interface: ``python -m repro <command>``.

Gives the open-source release a zero-code entry point:

* ``python -m repro fig3|fig4|fig5|fig6|index-size`` — regenerate a paper
  figure's table at a chosen scale;
* ``python -m repro all`` — every figure;
* ``python -m repro selftest`` — a fast end-to-end sanity check (all
  strategies vs ground truth on fresh synthetic data);
* ``python -m repro info`` — version, scale presets, strategy list.
"""

from __future__ import annotations

import argparse
import sys


def _add_scale_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale",
        choices=("tiny", "small", "full"),
        default="small",
        help="benchmark scale preset (default: small)",
    )


def cmd_figures(args: argparse.Namespace) -> int:
    from .bench.figures import run_fig3, run_fig4, run_fig5, run_fig6, run_index_size
    from .bench.harness import SCALES
    from .types import MB

    scale = SCALES[args.scale]
    which = args.command
    if which in ("fig3", "all"):
        sizes = (
            [int(s) * MB for s in args.region_sizes.split(",")]
            if getattr(args, "region_sizes", None)
            else None
        )
        run_fig3(scale, **({"region_sizes": sizes} if sizes else {}))
    if which in ("fig4", "all"):
        run_fig4(scale)
    if which in ("fig5", "all"):
        run_fig5(scale)
    if which in ("fig6", "all"):
        run_fig6(scale)
    if which in ("index-size", "all"):
        run_index_size(scale)
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    import numpy as np

    from .pdc import PDCConfig, PDCSystem
    from .query.ast import Condition, combine_and
    from .query.executor import QueryEngine
    from .strategies import Strategy
    from .types import PDCType, QueryOp

    rng = np.random.default_rng(0)
    system = PDCSystem(PDCConfig(n_servers=4, region_size_bytes=1 << 13))
    n = 1 << 14
    e = rng.gamma(2.0, 0.7, n).astype(np.float32)
    x = (rng.random(n) * 300).astype(np.float32)
    system.create_object("energy", e)
    system.create_object("x", x)
    system.build_index("energy")
    system.build_index("x")
    system.build_sorted_replica("energy", ["x"])

    node = combine_and(
        Condition("energy", QueryOp.GT, PDCType.FLOAT, 2.0),
        Condition("x", QueryOp.LT, PDCType.FLOAT, 150.0),
    )
    truth = int(((e > 2.0) & (x < 150.0)).sum())
    engine = QueryEngine(system)
    failures = 0
    for strategy in Strategy:
        res = engine.execute(node, strategy=strategy)
        status = "ok" if res.nhits == truth else "FAIL"
        failures += status == "FAIL"
        used = res.strategy.paper_label
        print(
            f"  {strategy.paper_label:<9} -> {used:<8} {res.nhits:>6} hits "
            f"({res.elapsed_s * 1e3:7.2f} simulated ms)  {status}"
        )
    # Distributed transport cross-check.
    from .pdc.transport import run_distributed_query

    wire = run_distributed_query(system, node, n_server_ranks=4)
    wire_ok = wire.size == truth
    failures += not wire_ok
    print(f"  simmpi wire path        {wire.size:>6} hits  {'ok' if wire_ok else 'FAIL'}")
    from .pdc.observability import report as status_report

    print()
    print(status_report(system, top_servers=4))
    print()
    print("selftest:", "PASS" if failures == 0 else f"FAIL ({failures})")
    return 1 if failures else 0


def cmd_info(args: argparse.Namespace) -> int:
    from . import __version__
    from .bench.harness import SCALES
    from .strategies import Strategy

    print(f"repro {__version__} — PDC-Query reproduction (IPDPS 2020)")
    print("strategies:", ", ".join(f"{s.value} ({s.paper_label})" for s in Strategy))
    print("scales:")
    for name, sc in SCALES.items():
        print(
            f"  {name:<6} {sc.vpic_particles:>9,} particles x scale "
            f"{sc.virtual_scale:>6.0f}, {sc.n_servers} servers, "
            f"{sc.boss_objects:,} BOSS objects"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PDC-Query reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("fig3", "single-object queries across region sizes (Fig. 3)"),
        ("fig4", "multi-object queries (Fig. 4)"),
        ("fig5", "BOSS metadata+data queries (Fig. 5)"),
        ("fig6", "server-count scaling (Fig. 6)"),
        ("index-size", "bitmap index storage footprint (§V)"),
        ("all", "every figure"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_scale_arg(p)
        if name in ("fig3", "all"):
            p.add_argument(
                "--region-sizes",
                help="comma-separated region sizes in MB (fig3 only), e.g. 4,32,128",
            )
        p.set_defaults(func=cmd_figures)

    p = sub.add_parser("selftest", help="fast end-to-end sanity check")
    p.set_defaults(func=cmd_selftest)

    p = sub.add_parser("info", help="version, strategies, scale presets")
    p.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
