"""Command-line interface: ``python -m repro <command>``.

Gives the open-source release a zero-code entry point:

* ``python -m repro fig3|fig4|fig5|fig6|index-size`` — regenerate a paper
  figure's table at a chosen scale;
* ``python -m repro all`` — every figure;
* ``python -m repro selftest`` — a fast end-to-end sanity check (all
  strategies vs ground truth on fresh synthetic data); ``--report``
  additionally prints the deployment status report, ``--trace FILE``
  writes a Chrome trace of the run;
* ``python -m repro trace <demo-query> --out trace.json`` — run one demo
  query with tracing enabled and export a Perfetto-loadable timeline;
* ``python -m repro metrics`` — run a demo workload and print the metrics
  registry in Prometheus text exposition format;
* ``python -m repro info`` — version, scale presets, strategy list.
"""

from __future__ import annotations

import argparse
import sys


def _add_scale_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale",
        choices=("tiny", "small", "full"),
        default="small",
        help="benchmark scale preset (default: small)",
    )


def cmd_figures(args: argparse.Namespace) -> int:
    from .bench.figures import run_fig3, run_fig4, run_fig5, run_fig6, run_index_size
    from .bench.harness import SCALES
    from .types import MB

    scale = SCALES[args.scale]
    which = args.command
    if which in ("fig3", "all"):
        sizes = (
            [int(s) * MB for s in args.region_sizes.split(",")]
            if getattr(args, "region_sizes", None)
            else None
        )
        run_fig3(scale, **({"region_sizes": sizes} if sizes else {}))
    if which in ("fig4", "all"):
        run_fig4(scale)
    if which in ("fig5", "all"):
        run_fig5(scale)
    if which in ("fig6", "all"):
        run_fig6(scale)
    if which in ("index-size", "all"):
        run_index_size(scale)
    return 0


def _demo_deployment():
    """The small two-object deployment shared by selftest/trace/metrics:
    an indexed, replica-backed system plus the demo condition tree and its
    ground-truth hit count."""
    import numpy as np

    from .pdc import PDCConfig, PDCSystem
    from .query.ast import Condition, combine_and
    from .types import PDCType, QueryOp

    rng = np.random.default_rng(0)
    system = PDCSystem(PDCConfig(n_servers=4, region_size_bytes=1 << 13))
    n = 1 << 14
    e = rng.gamma(2.0, 0.7, n).astype(np.float32)
    x = (rng.random(n) * 300).astype(np.float32)
    system.create_object("energy", e)
    system.create_object("x", x)
    system.build_index("energy")
    system.build_index("x")
    system.build_sorted_replica("energy", ["x"])

    node = combine_and(
        Condition("energy", QueryOp.GT, PDCType.FLOAT, 2.0),
        Condition("x", QueryOp.LT, PDCType.FLOAT, 150.0),
    )
    truth = int(((e > 2.0) & (x < 150.0)).sum())
    return system, node, truth


def cmd_selftest(args: argparse.Namespace) -> int:
    from .obs import Tracer
    from .query.executor import QueryEngine
    from .strategies import Strategy

    system, node, truth = _demo_deployment()
    trace_path = getattr(args, "trace", None)
    if trace_path:
        system.set_tracer(Tracer())
    engine = QueryEngine(system)
    failures = 0
    for strategy in Strategy:
        res = engine.execute(node, strategy=strategy)
        status = "ok" if res.nhits == truth else "FAIL"
        failures += status == "FAIL"
        used = res.strategy.paper_label
        print(
            f"  {strategy.paper_label:<9} -> {used:<8} {res.nhits:>6} hits "
            f"({res.elapsed_s * 1e3:7.2f} simulated ms)  {status}"
        )
    # Distributed transport cross-check.
    from .pdc.transport import run_distributed_query

    wire = run_distributed_query(system, node, n_server_ranks=4)
    wire_ok = wire.size == truth
    failures += not wire_ok
    print(f"  simmpi wire path        {wire.size:>6} hits  {'ok' if wire_ok else 'FAIL'}")
    if trace_path:
        system.tracer.write_chrome(trace_path)
        print(f"  trace: {len(system.tracer.spans)} spans -> {trace_path}")
    if getattr(args, "report", False):
        from .pdc.observability import report as status_report

        print()
        print(status_report(system, top_servers=4))
        print()
    print("selftest:", "PASS" if failures == 0 else f"FAIL ({failures})")
    return 1 if failures else 0


#: Demo queries for ``python -m repro trace``.
_TRACE_DEMOS = ("simple", "multi", "or")


def _demo_query(which: str):
    from .query.ast import Condition, combine_and, combine_or
    from .types import PDCType, QueryOp

    energy = Condition("energy", QueryOp.GT, PDCType.FLOAT, 2.0)
    x_lo = Condition("x", QueryOp.LT, PDCType.FLOAT, 150.0)
    x_hi = Condition("x", QueryOp.GT, PDCType.FLOAT, 290.0)
    if which == "simple":
        return energy
    if which == "multi":
        return combine_and(energy, x_lo)
    return combine_or(combine_and(energy, x_lo), x_hi)


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import Tracer
    from .query.executor import QueryEngine
    from .strategies import Strategy

    system, _, _ = _demo_deployment()
    tracer = Tracer()
    system.set_tracer(tracer)
    node = _demo_query(args.query)
    strategy = Strategy(args.strategy) if args.strategy else None
    res = QueryEngine(system).execute(node, strategy=strategy)
    tracer.write_chrome(args.out)
    if args.jsonl:
        tracer.write_jsonl(args.jsonl)
    print(
        f"{args.query} query ({res.strategy.paper_label}): {res.nhits} hits in "
        f"{res.elapsed_s * 1e3:.2f} simulated ms"
    )
    print(f"trace: {len(tracer.spans)} spans -> {args.out}"
          + (f" (+ JSONL {args.jsonl})" if args.jsonl else ""))
    summary = tracer.summary(res.trace)
    for cat in sorted(summary, key=summary.get, reverse=True):
        print(f"  {cat:<16} {summary[cat] * 1e3:9.3f} ms")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry
    from .query.executor import QueryEngine
    from .strategies import Strategy

    registry = MetricsRegistry()
    import numpy as np

    from .pdc import PDCConfig, PDCSystem
    from .query.ast import Condition, combine_and
    from .types import PDCType, QueryOp

    rng = np.random.default_rng(0)
    system = PDCSystem(
        PDCConfig(n_servers=4, region_size_bytes=1 << 13), metrics=registry
    )
    n = 1 << 14
    e = rng.gamma(2.0, 0.7, n).astype(np.float32)
    x = (rng.random(n) * 300).astype(np.float32)
    system.create_object("energy", e)
    system.create_object("x", x)
    system.build_index("energy")
    node = combine_and(
        Condition("energy", QueryOp.GT, PDCType.FLOAT, 2.0),
        Condition("x", QueryOp.LT, PDCType.FLOAT, 150.0),
    )
    engine = QueryEngine(system)
    for strategy in (Strategy.HISTOGRAM, Strategy.HIST_INDEX, Strategy.HISTOGRAM):
        engine.execute(node, strategy=strategy)
    print(registry.render(), end="")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from . import __version__
    from .bench.harness import SCALES
    from .strategies import Strategy

    print(f"repro {__version__} — PDC-Query reproduction (IPDPS 2020)")
    print("strategies:", ", ".join(f"{s.value} ({s.paper_label})" for s in Strategy))
    print("scales:")
    for name, sc in SCALES.items():
        print(
            f"  {name:<6} {sc.vpic_particles:>9,} particles x scale "
            f"{sc.virtual_scale:>6.0f}, {sc.n_servers} servers, "
            f"{sc.boss_objects:,} BOSS objects"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PDC-Query reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("fig3", "single-object queries across region sizes (Fig. 3)"),
        ("fig4", "multi-object queries (Fig. 4)"),
        ("fig5", "BOSS metadata+data queries (Fig. 5)"),
        ("fig6", "server-count scaling (Fig. 6)"),
        ("index-size", "bitmap index storage footprint (§V)"),
        ("all", "every figure"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_scale_arg(p)
        if name in ("fig3", "all"):
            p.add_argument(
                "--region-sizes",
                help="comma-separated region sizes in MB (fig3 only), e.g. 4,32,128",
            )
        p.set_defaults(func=cmd_figures)

    p = sub.add_parser("selftest", help="fast end-to-end sanity check")
    p.add_argument(
        "--report", action="store_true",
        help="also print the deployment status report",
    )
    p.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome trace of the selftest queries to FILE",
    )
    p.set_defaults(func=cmd_selftest)

    p = sub.add_parser(
        "trace", help="run a demo query with tracing and export the timeline"
    )
    p.add_argument("query", choices=_TRACE_DEMOS, help="demo query to trace")
    p.add_argument(
        "--out", default="trace.json",
        help="Chrome trace_event JSON output path (default: trace.json)",
    )
    p.add_argument("--jsonl", help="also write a JSONL structured-event log")
    from .strategies import Strategy

    p.add_argument(
        "--strategy",
        choices=[s.value for s in Strategy],
        help="evaluation strategy (default: the deployment's)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "metrics", help="run a demo workload and print the metrics registry"
    )
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("info", help="version, strategies, scale presets")
    p.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
