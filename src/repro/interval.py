"""Value intervals — the normalized form of range conditions.

Every simple query condition (``Energy > 2.0``, ``x = 3``) and every
conjunction of conditions on the same object normalizes to an
:class:`Interval`: a lower/upper bound pair with open/closed endpoints,
possibly unbounded on either side.  Histogram selectivity estimation, bitmap
candidate selection, sorted-layout binary search, and region elimination all
consume this one representation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .errors import QueryError
from .types import QueryOp, Scalar

__all__ = ["Interval"]


@dataclass(frozen=True)
class Interval:
    """A (possibly half-) bounded interval of values.

    ``lo=None`` means unbounded below; ``hi=None`` unbounded above.
    ``lo_closed``/``hi_closed`` select ≤ vs <.  An equality condition is the
    degenerate closed interval ``[v, v]``.
    """

    lo: Optional[float] = None
    hi: Optional[float] = None
    lo_closed: bool = True
    hi_closed: bool = True

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None:
            if self.lo > self.hi:
                raise QueryError(f"empty interval: lo={self.lo} > hi={self.hi}")
            if self.lo == self.hi and not (self.lo_closed and self.hi_closed):
                raise QueryError(f"empty interval at {self.lo} with open endpoint")

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_op(cls, op: QueryOp, value: Scalar) -> "Interval":
        """Interval matched by ``x <op> value``."""
        v = float(value)
        if op is QueryOp.GT:
            return cls(lo=v, hi=None, lo_closed=False)
        if op is QueryOp.GTE:
            return cls(lo=v, hi=None, lo_closed=True)
        if op is QueryOp.LT:
            return cls(lo=None, hi=v, hi_closed=False)
        if op is QueryOp.LTE:
            return cls(lo=None, hi=v, hi_closed=True)
        return cls(lo=v, hi=v, lo_closed=True, hi_closed=True)

    @classmethod
    def everything(cls) -> "Interval":
        return cls()

    # ------------------------------------------------------------- operations
    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Intersection, or ``None`` when it is empty."""
        # Tightest bound wins; ties are closed only if both are closed.
        if self.lo is None:
            lo, lo_closed = other.lo, other.lo_closed
        elif other.lo is None:
            lo, lo_closed = self.lo, self.lo_closed
        elif self.lo > other.lo:
            lo, lo_closed = self.lo, self.lo_closed
        elif other.lo > self.lo:
            lo, lo_closed = other.lo, other.lo_closed
        else:
            lo, lo_closed = self.lo, self.lo_closed and other.lo_closed

        if self.hi is None:
            hi, hi_closed = other.hi, other.hi_closed
        elif other.hi is None:
            hi, hi_closed = self.hi, self.hi_closed
        elif self.hi < other.hi:
            hi, hi_closed = self.hi, self.hi_closed
        elif other.hi < self.hi:
            hi, hi_closed = other.hi, other.hi_closed
        else:
            hi, hi_closed = self.hi, self.hi_closed and other.hi_closed

        if lo is not None and hi is not None:
            if lo > hi or (lo == hi and not (lo_closed and hi_closed)):
                return None
        return Interval(lo=lo, hi=hi, lo_closed=lo_closed, hi_closed=hi_closed)

    def covers(self, other: "Interval") -> bool:
        """True when every value matching ``other`` also matches ``self``
        (interval subsumption — the semantic-cache reuse test)."""
        if self.lo is not None:
            if other.lo is None:
                return False
            if other.lo < self.lo:
                return False
            if other.lo == self.lo and other.lo_closed and not self.lo_closed:
                return False
        if self.hi is not None:
            if other.hi is None:
                return False
            if other.hi > self.hi:
                return False
            if other.hi == self.hi and other.hi_closed and not self.hi_closed:
                return False
        return True

    def contains_value(self, v: float) -> bool:
        if self.lo is not None and (v < self.lo or (v == self.lo and not self.lo_closed)):
            return False
        if self.hi is not None and (v > self.hi or (v == self.hi and not self.hi_closed)):
            return False
        return True

    def contains_range(self, lo: float, hi: float) -> bool:
        """True when the closed value range ``[lo, hi]`` lies fully inside
        this interval (used for "bin fully overlaps" tests)."""
        return self.contains_value(lo) and self.contains_value(hi)

    def overlaps_range(self, lo: float, hi: float) -> bool:
        """True when the closed value range ``[lo, hi]`` intersects this
        interval at all (region/bin elimination test)."""
        if self.lo is not None and (hi < self.lo or (hi == self.lo and not self.lo_closed)):
            return False
        if self.hi is not None and (lo > self.hi or (lo == self.hi and not self.hi_closed)):
            return False
        return True

    def contains_range_arrays(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains_range` over arrays of closed value
        ranges ``[lo[i], hi[i]]``."""
        m = np.ones(np.shape(lo), dtype=bool)
        if self.lo is not None:
            m &= (lo >= self.lo) if self.lo_closed else (lo > self.lo)
        if self.hi is not None:
            m &= (hi <= self.hi) if self.hi_closed else (hi < self.hi)
        return m

    def overlaps_range_arrays(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`overlaps_range` over arrays of closed value
        ranges ``[lo[i], hi[i]]``."""
        m = np.ones(np.shape(lo), dtype=bool)
        if self.lo is not None:
            m &= (hi >= self.lo) if self.lo_closed else (hi > self.lo)
        if self.hi is not None:
            m &= (lo <= self.hi) if self.hi_closed else (lo < self.hi)
        return m

    def mask(self, data: np.ndarray) -> np.ndarray:
        """Vectorized membership test over an array."""
        m = np.ones(data.shape, dtype=bool)
        if self.lo is not None:
            m &= (data >= self.lo) if self.lo_closed else (data > self.lo)
        if self.hi is not None:
            m &= (data <= self.hi) if self.hi_closed else (data < self.hi)
        return m

    # -------------------------------------------------------------- inspection
    @property
    def is_everything(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def finite_bounds(self) -> Tuple[float, float]:
        """Bounds with infinities substituted for missing endpoints."""
        return (
            -math.inf if self.lo is None else self.lo,
            math.inf if self.hi is None else self.hi,
        )

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else f"{self.lo:g}"
        hi = "+inf" if self.hi is None else f"{self.hi:g}"
        lb = "[" if self.lo_closed and self.lo is not None else "("
        rb = "]" if self.hi_closed and self.hi is not None else ")"
        return f"{lb}{lo}, {hi}{rb}"
