"""Server-side LRU region cache.

§VI-A observes *"a decrease in the query evaluation time when more data is
selected ... due to the caching mechanism provided by the PDC: as the
queries are evaluated sequentially, an increasing number of the regions'
data are cached in the PDC servers' memory and do not require storage
access."*  This cache reproduces that effect: each PDC server caches the
region payloads it has read, bounded by the server memory limit (64 GB in
the paper's runs — tracked in *virtual* bytes so the limit is meaningful at
paper scale).

Entries may carry a real payload array or be **size-only**: the query
executor computes query answers on whole-object arrays (vectorized) while
charging I/O per region, so for cost accounting the cache only needs to
know *whether* a region is resident and how big it is.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

__all__ = ["RegionCache", "CacheStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    #: Entries removed by explicit :meth:`RegionCache.invalidate` calls
    #: (object rewrites, replica drops) — not capacity pressure.
    invalidations: int = 0
    #: Entries removed by :meth:`RegionCache.clear` (cache drops,
    #: crash simulation).
    clears: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    payload: Optional[np.ndarray]
    vbytes: float


class RegionCache:
    """LRU mapping from region key → (payload?, size), bounded in virtual
    bytes.

    ``virtual_scale`` converts real (scaled-down) payload sizes into the
    paper-scale footprint the 64 GB limit applies to.  A single entry larger
    than the capacity is simply not cached.
    """

    def __init__(
        self,
        capacity_bytes: float,
        virtual_scale: float = 1.0,
        metrics=None,
        owner: str = "",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.virtual_scale = float(virtual_scale)
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._used = 0.0
        self.stats = CacheStats()
        # Optional MetricsRegistry feed; labeled children are resolved once
        # here so the per-lookup cost is a single counter increment.
        self._m_hit = self._m_miss = None
        self._m_evict = self._m_invalidate = self._m_clear = None
        if metrics is not None:
            lookups = metrics.counter(
                "pdc_cache_lookups_total",
                "Region-cache lookups by server and result.",
                labels=("server", "result"),
            )
            self._m_hit = lookups.labels(server=owner, result="hit")
            self._m_miss = lookups.labels(server=owner, result="miss")
            # Every way an entry leaves the cache feeds the same family so
            # dashboards can reconcile used_bytes against inserts minus
            # removals: capacity evictions, explicit invalidations, and
            # whole-cache clears each get their own reason label.
            removals = metrics.counter(
                "pdc_cache_evictions_total",
                "Region-cache entry removals by server and reason.",
                labels=("server", "reason"),
            )
            self._m_evict = removals.labels(server=owner, reason="capacity")
            self._m_invalidate = removals.labels(server=owner, reason="invalidate")
            self._m_clear = removals.labels(server=owner, reason="clear")

    # ------------------------------------------------------------------- api
    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Cached payload (or ``None`` payload for size-only entries);
        returns ``None`` and counts a miss when absent.  Refreshes LRU
        position.  Use :meth:`lookup` to distinguish a size-only hit from a
        miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if self._m_miss is not None:
                self._m_miss.inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self._m_hit is not None:
            self._m_hit.inc()
        return entry.payload

    def lookup(self, key: Hashable) -> bool:
        """True when ``key`` is resident (counts hit/miss, refreshes LRU)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if self._m_miss is not None:
                self._m_miss.inc()
            return False
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self._m_hit is not None:
            self._m_hit.inc()
        return True

    def contains(self, key: Hashable) -> bool:
        """Presence check that does not disturb LRU order or stats."""
        return key in self._entries

    def put(
        self,
        key: Hashable,
        payload: Optional[np.ndarray] = None,
        nbytes: Optional[int] = None,
    ) -> bool:
        """Insert an entry; pass ``nbytes`` for size-only entries.

        Returns False when the entry cannot fit at all.
        """
        if nbytes is None:
            if payload is None:
                raise ValueError("put() needs a payload or an explicit nbytes")
            nbytes = payload.nbytes
        vsize = nbytes * self.virtual_scale
        if vsize > self.capacity_bytes:
            return False
        if key in self._entries:
            self._used -= self._entries[key].vbytes
            del self._entries[key]
        while self._used + vsize > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted.vbytes
            self.stats.evictions += 1
            if self._m_evict is not None:
                self._m_evict.inc()
        self._entries[key] = _Entry(payload=payload, vbytes=vsize)
        self._used += vsize
        self.stats.inserts += 1
        return True

    def invalidate(self, key: Hashable) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._used -= entry.vbytes
        self.stats.invalidations += 1
        if self._m_invalidate is not None:
            self._m_invalidate.inc()
        return True

    def clear(self) -> None:
        dropped = len(self._entries)
        self._entries.clear()
        self._used = 0.0
        self.stats.clears += dropped
        if dropped and self._m_clear is not None:
            self._m_clear.inc(dropped)

    # ------------------------------------------------------------ inspection
    def entries(self) -> List[Tuple[Hashable, float]]:
        """Snapshot of ``(key, virtual_bytes)`` in LRU order (oldest first).

        Does not disturb LRU position or stats — used by the cluster
        rebalancer to size migrations without perturbing cache behavior.
        """
        return [(k, e.vbytes) for k, e in self._entries.items()]

    @property
    def used_bytes(self) -> float:
        """Virtual bytes currently cached."""
        return self._used

    def __len__(self) -> int:
        return len(self._entries)
