"""Simulated files on a striped parallel file system.

PDC's internal data files (§III-E) are hidden from users and striped across
the parallel file system's storage devices.  :class:`SimFile` stores the
actual payload as a 1-D numpy array (so query answers are real), while
:class:`ParallelFileSystem` accounts for simulated read/write time through a
:class:`~repro.storage.costmodel.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import RegionUnavailableError, StorageError
from .costmodel import CostModel, SimClock

__all__ = ["SimFile", "ParallelFileSystem", "Extent"]

#: Half-open element range ``(start, stop)`` within a file.
Extent = Tuple[int, int]


@dataclass
class SimFile:
    """One file: a named, striped 1-D array of fixed dtype.

    ``imbalance`` models OST hotspotting: PDC distributes its internal data
    files across the PFS's storage devices and aggregates small reads
    (§III-E), so its files read at balance ~1.0; ordinary files with default
    striping collide on popular OSTs and straggle (the paper attributes
    HDF5-F's ~2× slower reads to exactly this).
    """

    path: str
    data: np.ndarray
    stripe_count: int
    imbalance: float = 1.0

    def __post_init__(self) -> None:
        if self.data.ndim != 1:
            raise StorageError(f"SimFile {self.path!r} payload must be 1-D")
        if self.stripe_count < 1:
            raise StorageError("stripe_count must be >= 1")
        if self.imbalance < 1.0:
            raise StorageError("imbalance factor must be >= 1.0")

    @property
    def n_elements(self) -> int:
        return int(self.data.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def itemsize(self) -> int:
        return int(self.data.dtype.itemsize)


class ParallelFileSystem:
    """A namespace of :class:`SimFile` objects with Lustre-like striping.

    Reads return numpy views into the stored arrays (no copies — see the
    hpc guide's "views not copies" rule); time is charged to the caller's
    clock when one is supplied.
    """

    def __init__(
        self,
        cost: Optional[CostModel] = None,
        default_stripe_count: int = 8,
        metrics=None,
    ) -> None:
        self.cost = cost or CostModel()
        self.default_stripe_count = default_stripe_count
        self._files: Dict[str, SimFile] = {}
        #: Total (virtual) bytes read since creation — benchmark observability.
        self.bytes_read: float = 0.0
        self.bytes_written: float = 0.0
        self.read_accesses: int = 0
        #: Fault plan (:mod:`repro.faults`) injected by the owning system;
        #: None leaves every read on the pre-fault code path.
        self.fault_plan = None
        # Optional MetricsRegistry feed (children resolved once).
        self._m_bytes_read = self._m_bytes_written = self._m_accesses = None
        if metrics is not None:
            self._m_bytes_read = metrics.counter(
                "pdc_pfs_bytes_read_virtual_total",
                "Virtual bytes read from the simulated PFS.",
            )
            self._m_bytes_written = metrics.counter(
                "pdc_pfs_bytes_written_virtual_total",
                "Virtual bytes written to the simulated PFS.",
            )
            self._m_accesses = metrics.counter(
                "pdc_pfs_read_accesses_total",
                "Contiguous read accesses issued to the simulated PFS.",
            )

    # -------------------------------------------------------------- namespace
    def exists(self, path: str) -> bool:
        return path in self._files

    def stat(self, path: str) -> SimFile:
        try:
            return self._files[path]
        except KeyError:
            raise StorageError(f"no such file: {path!r}") from None

    def listdir(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise StorageError(f"no such file: {path!r}")
        del self._files[path]

    def total_bytes(self, prefix: str = "") -> int:
        """Real bytes stored under ``prefix`` (index-size accounting)."""
        return sum(f.nbytes for p, f in self._files.items() if p.startswith(prefix))

    # ------------------------------------------------------------------ write
    def create(
        self,
        path: str,
        data: np.ndarray,
        stripe_count: Optional[int] = None,
        clock: Optional[SimClock] = None,
        concurrent_writers: int = 1,
        imbalance: float = 1.0,
    ) -> SimFile:
        """Create ``path`` holding ``data`` (1-D); charges write time."""
        if path in self._files:
            raise StorageError(f"file exists: {path!r}")
        data = np.ascontiguousarray(data)
        f = SimFile(
            path=path,
            data=data,
            stripe_count=stripe_count or self.default_stripe_count,
            imbalance=imbalance,
        )
        self._files[path] = f
        self.bytes_written += self.cost.virtual_bytes(f.nbytes)
        if self._m_bytes_written is not None:
            self._m_bytes_written.inc(self.cost.virtual_bytes(f.nbytes))
        if clock is not None:
            clock.charge(
                self.cost.pfs_write_time(f.nbytes, 1, f.stripe_count, concurrent_writers),
                category="pfs_write",
            )
        return f

    # ------------------------------------------------------------------- read
    def read(
        self,
        path: str,
        start: int = 0,
        stop: Optional[int] = None,
        clock: Optional[SimClock] = None,
        concurrent_readers: int = 1,
    ) -> np.ndarray:
        """Read elements ``[start, stop)`` of ``path`` as one contiguous
        access; returns a view."""
        (view,) = self.read_extents(
            path, [(start, stop if stop is not None else self.stat(path).n_elements)],
            clock=clock, concurrent_readers=concurrent_readers,
        )
        return view

    def read_extents(
        self,
        path: str,
        extents: Sequence[Extent],
        clock: Optional[SimClock] = None,
        concurrent_readers: int = 1,
    ) -> List[np.ndarray]:
        """Read several element extents; each extent is one PFS access.

        Callers wanting fewer accesses should merge extents first with
        :func:`repro.storage.aggregator.aggregate_extents`.
        """
        f = self.stat(path)
        views: List[np.ndarray] = []
        nbytes = 0
        for start, stop in extents:
            if not (0 <= start <= stop <= f.n_elements):
                raise StorageError(
                    f"extent ({start}, {stop}) out of bounds for {path!r} "
                    f"with {f.n_elements} elements"
                )
            views.append(f.data[start:stop])
            nbytes += (stop - start) * f.itemsize
        self.bytes_read += self.cost.virtual_bytes(nbytes)
        self.read_accesses += len(extents)
        if self._m_bytes_read is not None:
            self._m_bytes_read.inc(self.cost.virtual_bytes(nbytes))
            self._m_accesses.inc(len(extents))
        if clock is not None and extents:
            clock.charge(
                f.imbalance
                * self.cost.pfs_read_time(
                    nbytes, len(extents), f.stripe_count, concurrent_readers
                ),
                category="pfs_read",
            )
        if self.fault_plan is not None and extents:
            self._inject_read_faults(f, extents, clock, concurrent_readers)
        return views

    def _inject_read_faults(
        self,
        f: SimFile,
        extents: Sequence[Extent],
        clock: Optional[SimClock],
        concurrent_readers: int,
    ) -> None:
        """Per-extent fault injection for :meth:`read_extents`.

        A latency spike on an extent charges the extra ``(factor - 1)×``
        of that extent's read time; a read error re-charges the extent
        (one re-read per retry) plus exponential backoff, and raises
        :class:`RegionUnavailableError` once the plan's retry budget is
        exhausted.  Draws are keyed by ``path:start`` so each extent has
        its own deterministic sequence regardless of batching.
        """
        plan = self.fault_plan
        for start, stop in extents:
            key = f"{f.path}:{start}"
            extent_time = f.imbalance * self.cost.pfs_read_time(
                (stop - start) * f.itemsize, 1, f.stripe_count, concurrent_readers
            )
            slow = plan.pfs_slow_factor(key)
            if slow != 1.0 and clock is not None:
                clock.charge((slow - 1.0) * extent_time, category="pfs_read")
            attempt = 0
            while plan.pfs_read_fails(key):
                attempt += 1
                if attempt > plan.config.max_retries:
                    raise RegionUnavailableError(
                        f"read of {f.path!r} extent [{start}, {stop}) failed "
                        f"after {attempt} attempts"
                    )
                if clock is not None:
                    clock.charge(plan.backoff_s(attempt), category="retry_backoff")
                    clock.charge(extent_time, category="pfs_read")

    def reset_counters(self) -> None:
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.read_accesses = 0
