"""Read aggregation: merge small nearby reads into larger contiguous ones.

§III-E: *"PDC ... uses aggregation methods to merge small reads into bigger
ones to reduce the data access contention."*  Range-query results are
scattered, so naive retrieval issues many small reads; merging extents whose
gap is below a threshold trades a little extra data for far fewer accesses —
a large win when per-access latency dominates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["aggregate_extents", "coords_to_extents", "extent_stats"]

Extent = Tuple[int, int]


def aggregate_extents(extents: Sequence[Extent], gap_threshold: int = 0) -> List[Extent]:
    """Merge overlapping/nearby half-open extents.

    Two extents are merged when the gap between them is ``<= gap_threshold``
    elements.  Input order is irrelevant; output is sorted and disjoint.

    >>> aggregate_extents([(0, 4), (4, 8), (20, 24)], gap_threshold=0)
    [(0, 8), (20, 24)]
    >>> aggregate_extents([(0, 4), (6, 8)], gap_threshold=2)
    [(0, 8)]
    """
    if gap_threshold < 0:
        raise ValueError("gap_threshold must be >= 0")
    cleaned = [(int(a), int(b)) for a, b in extents if b > a]
    if not cleaned:
        return []
    cleaned.sort()
    merged: List[Extent] = [cleaned[0]]
    for start, stop in cleaned[1:]:
        last_start, last_stop = merged[-1]
        if start - last_stop <= gap_threshold:
            if stop > last_stop:
                merged[-1] = (last_start, stop)
        else:
            merged.append((start, stop))
    return merged


def coords_to_extents(coords: np.ndarray, gap_threshold: int = 0) -> List[Extent]:
    """Turn sorted element coordinates into merged read extents.

    ``coords`` is a 1-D integer array of element indices (need not be
    sorted).  Runs of consecutive indices become one extent; extents are then
    merged under ``gap_threshold`` like :func:`aggregate_extents`.
    """
    if coords.size == 0:
        return []
    c = np.sort(np.asarray(coords, dtype=np.int64))
    # Break points where the next index is not consecutive.
    breaks = np.flatnonzero(np.diff(c) > 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [c.size - 1]))
    runs = [(int(c[i]), int(c[j]) + 1) for i, j in zip(starts, stops)]
    if gap_threshold > 0:
        return aggregate_extents(runs, gap_threshold)
    return runs


def extent_stats(extents: Sequence[Extent]) -> Tuple[int, int]:
    """``(n_accesses, n_elements)`` covered by a set of extents."""
    return len(extents), sum(b - a for a, b in extents)
