"""Simulated storage devices and capacity accounting.

A :class:`StorageDevice` is one addressable unit of the memory/storage
hierarchy (a compute node's DRAM, a burst-buffer SSD, a Lustre OST, a tape
drive).  Regions of PDC objects are placed on devices (§II: *"a region ...
can reside on any layer of the memory/storage hierarchy"*); the device's
bandwidth/latency pair feeds the cost model when a region is read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import CapacityError, StorageError

__all__ = ["DeviceKind", "StorageDevice"]


class DeviceKind:
    """String constants naming the hierarchy layers from §II of the paper."""

    MEMORY = "memory"
    NVRAM = "nvram"
    DISK = "disk"
    TAPE = "tape"

    ORDER = (MEMORY, NVRAM, DISK, TAPE)

    @staticmethod
    def is_faster(a: str, b: str) -> bool:
        """True when layer ``a`` is higher (faster) in the hierarchy than
        ``b``."""
        return DeviceKind.ORDER.index(a) < DeviceKind.ORDER.index(b)


@dataclass
class StorageDevice:
    """One device with finite capacity and an allocation table.

    Allocation is tracked per named extent; the device never stores payload
    bytes itself (payloads live in the owning :class:`~repro.storage.file.SimFile`
    or region), it only accounts for capacity and performance parameters.
    """

    name: str
    kind: str
    capacity_bytes: int
    read_bandwidth_bps: float
    write_bandwidth_bps: float
    access_latency_s: float
    _allocations: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in DeviceKind.ORDER:
            raise StorageError(f"unknown device kind {self.kind!r}")
        if self.capacity_bytes <= 0:
            raise StorageError("device capacity must be positive")

    # ------------------------------------------------------------ allocation
    @property
    def used_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, extent_name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``extent_name``.

        Raises :class:`CapacityError` when the device is full and
        :class:`StorageError` on a duplicate extent name.
        """
        if nbytes < 0:
            raise StorageError(f"negative allocation {nbytes} on {self.name}")
        if extent_name in self._allocations:
            raise StorageError(f"extent {extent_name!r} already allocated on {self.name}")
        if nbytes > self.free_bytes:
            raise CapacityError(
                f"device {self.name} full: need {nbytes}, free {self.free_bytes}"
            )
        self._allocations[extent_name] = nbytes

    def resize(self, extent_name: str, nbytes: int) -> None:
        """Grow or shrink an existing extent."""
        if extent_name not in self._allocations:
            raise StorageError(f"extent {extent_name!r} not allocated on {self.name}")
        delta = nbytes - self._allocations[extent_name]
        if delta > self.free_bytes:
            raise CapacityError(
                f"device {self.name} full: need {delta} more, free {self.free_bytes}"
            )
        self._allocations[extent_name] = nbytes

    def release(self, extent_name: str) -> int:
        """Free an extent; returns the bytes released."""
        try:
            return self._allocations.pop(extent_name)
        except KeyError:
            raise StorageError(f"extent {extent_name!r} not allocated on {self.name}") from None

    def holds(self, extent_name: str) -> bool:
        return extent_name in self._allocations

    def allocation_of(self, extent_name: str) -> Optional[int]:
        return self._allocations.get(extent_name)
