"""Factory functions for the standard memory/storage hierarchy tiers.

§II of the paper: PDC moves data *"across a hierarchy of memory and storage
layers"* — main memory, NVRAM (burst buffer), disk (Lustre), tape.  These
factories build :class:`~repro.storage.device.StorageDevice` instances with
Cori-flavoured performance constants; the exact numbers only matter
relative to each other.
"""

from __future__ import annotations

from ..types import GB, MB, TB
from .device import DeviceKind, StorageDevice

__all__ = [
    "make_memory_device",
    "make_nvram_device",
    "make_disk_device",
    "make_tape_device",
    "default_hierarchy",
]


def make_memory_device(name: str = "dram", capacity_bytes: int = 64 * GB) -> StorageDevice:
    """Compute-node DRAM.  The 64 GB default matches the paper's per-server
    memory limit (§V: *"We set a memory limit of 64GB ... to be used by each
    PDC server"*)."""
    return StorageDevice(
        name=name,
        kind=DeviceKind.MEMORY,
        capacity_bytes=capacity_bytes,
        read_bandwidth_bps=40.0 * GB,
        write_bandwidth_bps=30.0 * GB,
        access_latency_s=100e-9,
    )


def make_nvram_device(name: str = "bb", capacity_bytes: int = 2 * TB) -> StorageDevice:
    """Burst-buffer SSD tier."""
    return StorageDevice(
        name=name,
        kind=DeviceKind.NVRAM,
        capacity_bytes=capacity_bytes,
        read_bandwidth_bps=6.0 * GB,
        write_bandwidth_bps=5.0 * GB,
        access_latency_s=80e-6,
    )


def make_disk_device(name: str = "ost", capacity_bytes: int = 100 * TB) -> StorageDevice:
    """One Lustre object storage target (OST)."""
    return StorageDevice(
        name=name,
        kind=DeviceKind.DISK,
        capacity_bytes=capacity_bytes,
        read_bandwidth_bps=1.2 * GB,
        write_bandwidth_bps=1.0 * GB,
        access_latency_s=2e-3,
    )


def make_tape_device(name: str = "hpss", capacity_bytes: int = 1000 * TB) -> StorageDevice:
    """Archive tier; never used on the query fast path."""
    return StorageDevice(
        name=name,
        kind=DeviceKind.TAPE,
        capacity_bytes=capacity_bytes,
        read_bandwidth_bps=300 * MB,
        write_bandwidth_bps=300 * MB,
        access_latency_s=30.0,
    )


def default_hierarchy(server_id: int = 0) -> dict:
    """A per-server view of the hierarchy: its own DRAM plus the shared
    lower tiers."""
    return {
        DeviceKind.MEMORY: make_memory_device(f"dram{server_id}"),
        DeviceKind.NVRAM: make_nvram_device(f"bb{server_id}"),
        DeviceKind.DISK: make_disk_device(f"ost{server_id}"),
        DeviceKind.TAPE: make_tape_device(f"hpss{server_id}"),
    }
