"""Simulated storage substrate: devices, tiers, parallel file system,
read aggregation, region cache, and the simulated-time cost model.

This package replaces the paper's Cori/Lustre testbed with a deterministic
simulator — see DESIGN.md §2 for the substitution argument.
"""

from .aggregator import aggregate_extents, coords_to_extents, extent_stats
from .cache import CacheStats, RegionCache
from .costmodel import CORI_LIKE, CostModel, CostParameters, SimClock
from .device import DeviceKind, StorageDevice
from .file import ParallelFileSystem, SimFile
from .tiers import (
    default_hierarchy,
    make_disk_device,
    make_memory_device,
    make_nvram_device,
    make_tape_device,
)

__all__ = [
    "aggregate_extents",
    "coords_to_extents",
    "extent_stats",
    "CacheStats",
    "RegionCache",
    "CORI_LIKE",
    "CostModel",
    "CostParameters",
    "SimClock",
    "DeviceKind",
    "StorageDevice",
    "ParallelFileSystem",
    "SimFile",
    "default_hierarchy",
    "make_disk_device",
    "make_memory_device",
    "make_nvram_device",
    "make_tape_device",
]
