"""Simulated-time accounting for the storage and network substrate.

The paper's evaluation ran on the Cori supercomputer and reported elapsed
wall-clock seconds.  This reproduction replaces the machine with a calibrated
cost model: every storage read, network message, and element scan *charges*
simulated seconds to a :class:`SimClock`.  The elapsed time of a parallel
phase is the maximum over the participating servers' clocks, which models a
bulk-synchronous execution exactly the way the paper measures end-to-end
query time (client issues query → all servers evaluate → client aggregates).

Calibration targets (Cori Haswell + Lustre, §V of the paper):

* Lustre aggregate read bandwidth shared by all servers, charged per OST
  with a contention factor when many servers read at once.
* A per-access latency that penalizes many small non-contiguous reads —
  the effect that motivates region-size tuning and read aggregation (§III-E).
* A per-element scan cost for in-memory query evaluation.

All constants live in :class:`CostParameters` so ablation benches can vary
them.  A ``virtual_scale`` factor maps the scaled-down in-memory arrays used
by this reproduction onto the paper's 3.3 TB dataset: costs are charged in
*virtual* bytes/elements (real × scale) while correctness is checked on the
real data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict

from ..types import GB

__all__ = ["CostParameters", "SimClock", "CostModel", "CORI_LIKE"]


@dataclass(frozen=True)
class CostParameters:
    """Constants of the simulated machine.

    Defaults approximate one Cori Haswell node reading from the shared
    Lustre scratch file system.
    """

    #: Per-access latency of the parallel file system (seek + RPC), seconds.
    seek_latency_s: float = 2.0e-3
    #: Sustained read bandwidth of a single OST, bytes/second.
    ost_bandwidth_bps: float = 0.35 * GB
    #: Number of OSTs in the simulated Lustre file system.
    n_osts: int = 248
    #: Maximum striping width of one file (Lustre default-ish cap).
    max_stripe_count: int = 72
    #: Point-to-point network message latency, seconds.
    net_latency_s: float = 20.0e-6
    #: Network bandwidth between client and a server, bytes/second.
    net_bandwidth_bps: float = 8.0 * GB
    #: CPU cost to evaluate one element against a condition, seconds.
    scan_cost_per_elem_s: float = 0.35e-9
    #: CPU cost of one comparison step in a binary search, seconds.
    binary_search_step_s: float = 50.0e-9
    #: Memory bandwidth for in-memory copies (cache hits), bytes/second.
    mem_bandwidth_bps: float = 40.0 * GB
    #: Exponent of the contention penalty: effective per-reader bandwidth is
    #: divided by ``max(1, readers_per_ost) ** contention_alpha``.
    contention_alpha: float = 1.0
    #: Cost to decompress/scan one WAH word of a bitmap index, seconds.
    wah_word_cost_s: float = 1.2e-9
    #: Fixed software overhead per query request on a server, seconds.
    server_overhead_s: float = 1.0e-4
    #: Cost to examine one metadata record during a metadata query, seconds.
    meta_op_cost_s: float = 150.0e-9
    #: Node-local burst-buffer (NVRAM) access latency / bandwidth.
    nvram_latency_s: float = 80.0e-6
    nvram_bandwidth_bps: float = 6.0 * GB
    #: Tape archive access latency / bandwidth (never on the fast path).
    tape_latency_s: float = 30.0
    tape_bandwidth_bps: float = 0.3 * GB
    #: Fixed client-side cost to serialize/deserialize a query plan, seconds.
    client_overhead_s: float = 5.0e-4

    def with_updates(self, **kwargs: float) -> "CostParameters":
        """Return a copy with some constants replaced (ablation helper)."""
        return replace(self, **kwargs)


#: Default parameter set used by the benchmark harness.
CORI_LIKE = CostParameters()


class SimClock:
    """Accumulator of simulated seconds for one simulated entity.

    A clock only moves forward.  ``charge`` adds a duration; ``advance_to``
    implements a rendezvous with another clock (used when a server must wait
    for data produced elsewhere).
    """

    __slots__ = ("_now", "name", "_by_category", "drag")

    def __init__(self, name: str = "clock") -> None:
        self.name = name
        self._now = 0.0
        self._by_category: Dict[str, float] = {}
        #: Straggler multiplier applied to every charge (fault injection:
        #: a "slow server" runs all its work at ``drag``× cost).  Exactly
        #: 1.0 leaves charges bit-identical to an undragged clock.
        self.drag = 1.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def charge(self, seconds: float, category: str = "other") -> float:
        """Add ``seconds`` of simulated work; returns the new time.

        Negative or non-finite charges indicate a cost-model bug and raise.
        """
        if not (seconds >= 0.0) or math.isinf(seconds) or math.isnan(seconds):
            raise ValueError(f"invalid charge {seconds!r} on clock {self.name}")
        if self.drag != 1.0:
            seconds = seconds * self.drag
        self._now += seconds
        self._by_category[category] = self._by_category.get(category, 0.0) + seconds
        return self._now

    def advance_to(self, t: float, category: str = "wait") -> float:
        """Move the clock to time ``t`` if ``t`` is later (waiting).

        ``category`` attributes the waited time: plain barrier waits stay
        under ``wait``; rendezvous inside communication collectives pass
        ``comm`` so reports can separate "idle at a barrier" from "stalled
        on communication".
        """
        if t > self._now:
            self._by_category[category] = self._by_category.get(category, 0.0) + (t - self._now)
            self._now = t
        return self._now

    def breakdown(self) -> Dict[str, float]:
        """Charged seconds per category (copy)."""
        return dict(self._by_category)

    def reset(self) -> None:
        self._now = 0.0
        self._by_category.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock({self.name!r}, now={self._now:.6f}s)"


@dataclass
class CostModel:
    """Translates physical operations into simulated seconds.

    One :class:`CostModel` is shared by all servers of a PDC deployment so
    contention can be modeled globally.  The model is stateless apart from
    its parameters; all state (elapsed time) lives in the clocks.
    """

    params: CostParameters = field(default_factory=lambda: CORI_LIKE)
    #: Each real byte/element stands for this many virtual ones.
    virtual_scale: float = 1.0

    # ---------------------------------------------------------------- storage
    def pfs_read_time(
        self,
        nbytes: int,
        n_accesses: int,
        stripe_count: int,
        concurrent_readers: int = 1,
        scaled: bool = True,
    ) -> float:
        """Seconds to read ``nbytes`` (real) from the PFS in ``n_accesses``
        contiguous extents, with ``concurrent_readers`` servers hammering the
        file system at once.

        Bandwidth scales with the file's stripe width but degrades when more
        readers than OSTs pile up (§III-E: PDC's distribution across storage
        devices reduces exactly this contention).

        ``scaled=False`` charges the byte count as-is — for metadata-like
        payloads (histograms, index directories) whose size does not grow
        with the virtual dataset.
        """
        p = self.params
        vbytes = nbytes * (self.virtual_scale if scaled else 1.0)
        stripes = max(1, min(stripe_count, p.max_stripe_count))
        readers_per_ost = max(1.0, concurrent_readers * stripes / p.n_osts)
        bw = p.ost_bandwidth_bps * stripes / (readers_per_ost ** p.contention_alpha)
        return n_accesses * p.seek_latency_s + vbytes / bw

    def pfs_write_time(
        self, nbytes: int, n_accesses: int, stripe_count: int, concurrent_writers: int = 1
    ) -> float:
        """Writes are modeled like reads at ~80% of read bandwidth."""
        return self.pfs_read_time(nbytes, n_accesses, stripe_count, concurrent_writers) / 0.8

    def tier_read_time(
        self,
        nbytes: int,
        n_accesses: int,
        tier: str,
        stripe_count: int,
        concurrent_readers: int = 1,
        scaled: bool = True,
    ) -> float:
        """Read time from a given hierarchy layer (§II: regions can live
        on memory, NVRAM, disk, or tape).

        Disk means the shared Lustre PFS (striping + contention); NVRAM is
        a node-local burst buffer (no cross-server contention); memory is a
        plain copy; tape is mount-latency-bound.
        """
        from ..storage.device import DeviceKind

        p = self.params
        vbytes = nbytes * (self.virtual_scale if scaled else 1.0)
        if tier == DeviceKind.DISK:
            return self.pfs_read_time(
                nbytes, n_accesses, stripe_count, concurrent_readers, scaled=scaled
            )
        if tier == DeviceKind.MEMORY:
            return vbytes / p.mem_bandwidth_bps
        if tier == DeviceKind.NVRAM:
            return n_accesses * p.nvram_latency_s + vbytes / p.nvram_bandwidth_bps
        if tier == DeviceKind.TAPE:
            return n_accesses * p.tape_latency_s + vbytes / p.tape_bandwidth_bps
        raise ValueError(f"unknown storage tier {tier!r}")

    def mem_copy_time(self, nbytes: int, scaled: bool = True) -> float:
        """Seconds to copy ``nbytes`` (real) within a server's memory
        (cache hit path)."""
        scale = self.virtual_scale if scaled else 1.0
        return (nbytes * scale) / self.params.mem_bandwidth_bps

    # ---------------------------------------------------------------- network
    def net_time(self, nbytes: int, scaled: bool = True) -> float:
        """Seconds to move one message of ``nbytes`` (real) across the
        interconnect.  ``scaled=False`` for metadata-sized messages that do
        not grow with the virtual dataset."""
        scale = self.virtual_scale if scaled else 1.0
        return self.params.net_latency_s + (nbytes * scale) / self.params.net_bandwidth_bps

    # -------------------------------------------------------------------- cpu
    def scan_time(self, n_elements: int, n_conditions: int = 1) -> float:
        """Seconds to evaluate ``n_conditions`` comparisons over
        ``n_elements`` (real) array elements."""
        return n_elements * self.virtual_scale * n_conditions * self.params.scan_cost_per_elem_s

    def binary_search_time(self, n_elements: int) -> float:
        """Seconds for a binary search over ``n_elements`` (virtual-scaled)."""
        n = max(2.0, n_elements * self.virtual_scale)
        return math.log2(n) * self.params.binary_search_step_s

    def wah_scan_time(self, n_words: int) -> float:
        """Seconds to stream ``n_words`` compressed WAH words."""
        return n_words * self.virtual_scale * self.params.wah_word_cost_s

    def sort_time(self, n_elements: int) -> float:
        """Seconds for an out-of-core parallel sort of ``n_elements``
        (used only when building sorted replicas, reported as a one-time
        reorganization cost)."""
        n = max(2.0, n_elements * self.virtual_scale)
        return n * math.log2(n) * self.params.scan_cost_per_elem_s * 4.0

    # ---------------------------------------------------------------- helpers
    def virtual_bytes(self, nbytes: int) -> float:
        """Real byte count scaled to the paper's dataset size."""
        return nbytes * self.virtual_scale
