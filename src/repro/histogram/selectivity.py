"""Selectivity estimation and multi-object evaluation ordering.

§III-C/D2: when a query has conditions on multiple objects, PDC evaluates
them *"sequentially with the order based on their estimated selectivity"* —
the most selective condition first, so that later conditions only check the
already-matched locations.  The estimate comes from the global histogram at
near-zero cost (bounded above/below by partially/fully overlapping bins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..interval import Interval
from .global_hist import GlobalHistogram

__all__ = ["SelectivityEstimate", "estimate", "order_by_selectivity"]


@dataclass(frozen=True)
class SelectivityEstimate:
    """Bounds on the fraction of elements matching one condition."""

    lower: float
    upper: float

    @property
    def midpoint(self) -> float:
        """Point estimate used for ordering decisions."""
        return 0.5 * (self.lower + self.upper)

    def __post_init__(self) -> None:
        if not (0.0 <= self.lower <= self.upper <= 1.0 + 1e-12):
            raise ValueError(f"invalid selectivity bounds [{self.lower}, {self.upper}]")


def estimate(hist: GlobalHistogram, interval: Interval) -> SelectivityEstimate:
    """Histogram-based selectivity bounds for one object's interval."""
    lower, upper = hist.estimate_selectivity(interval)
    return SelectivityEstimate(lower=lower, upper=min(1.0, upper))


def order_by_selectivity(
    conditions: Sequence[Tuple[str, Interval]],
    histograms: Dict[str, GlobalHistogram],
) -> List[Tuple[str, Interval, Optional[SelectivityEstimate]]]:
    """Order (object, interval) conditions most-selective-first.

    Conditions on objects without a histogram sort *strictly* last
    (unknown selectivity is worse than any estimate, including a known
    midpoint of exactly 1.0), preserving input order among ties — that
    keeps plans deterministic.

    Returns ``(object_name, interval, estimate_or_None)`` triples.
    """
    decorated = []
    for pos, (name, interval) in enumerate(conditions):
        hist = histograms.get(name)
        est = estimate(hist, interval) if hist is not None else None
        # Rank before midpoint: an unknown must never tie with (and by
        # input position beat) a condition whose estimate is genuinely 1.0.
        rank = 0 if est is not None else 1
        sort_key = est.midpoint if est is not None else 1.0
        decorated.append((rank, sort_key, pos, name, interval, est))
    decorated.sort(key=lambda t: (t[0], t[1], t[2]))
    return [(name, interval, est) for _, _, _, name, interval, est in decorated]
