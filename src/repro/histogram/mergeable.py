"""Mergeable per-region histograms — Algorithm 1 of the paper.

The paper's key constraint (§IV): per-region histograms must be generated
*without global communication* yet remain mergeable into one global
histogram.  Algorithm 1 achieves this by construction:

1. sample ~10 % of the region's data for an approximate min/max;
2. compute a raw bin width for the requested number of bins, then round it
   **down to a power of two** (``..., 0.25, 0.5, 1, 2, 4, ...``) — so any
   two regions' widths divide one another;
3. anchor the first bin boundary on the integer grid *aligned to the bin
   width* — so every boundary lies in ``{k · 2^x}`` and the boundary grids
   of any two histograms nest exactly.

(The paper anchors at a natural number; we additionally align the anchor to
a multiple of the width, which is required for exact nesting when the width
exceeds 1 and is a strict subset of the paper's boundary set otherwise.)

The full pass then bin-counts every element (``O(N)``, fully vectorized).
Elements outside the sampled min/max estimate extend the histogram rather
than clamping into edge bins, so counts stay exact; true min/max are
recorded for region elimination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Tuple

import numpy as np

from ..errors import QueryError
from ..interval import Interval

__all__ = ["MergeableHistogram", "round_down_pow2"]


def round_down_pow2(x: float) -> float:
    """Largest power of two ``<= x`` (x > 0).  Exact in binary floating
    point, so all downstream boundary arithmetic is exact too."""
    if not (x > 0) or math.isinf(x) or math.isnan(x):
        raise ValueError(f"cannot round {x!r} to a power of two")
    return 2.0 ** math.floor(math.log2(x))


@dataclass
class MergeableHistogram:
    """A histogram whose bin grid nests with any other instance's grid.

    Invariants (property-tested):

    * ``bin_width`` is an exact power of two;
    * ``start`` is an exact integer multiple of ``bin_width``;
    * ``counts.sum() == total`` equals the number of elements histogrammed;
    * ``data_min``/``data_max`` are the true extrema of the data.
    """

    bin_width: float
    start: float
    counts: np.ndarray
    data_min: float
    data_max: float

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.counts.ndim != 1 or self.counts.size == 0:
            raise QueryError("histogram needs a non-empty 1-D count array")
        if self.bin_width <= 0:
            raise QueryError("bin_width must be positive")

    # ------------------------------------------------------------ construction
    @classmethod
    def from_data(
        cls,
        data: np.ndarray,
        n_bins: int = 64,
        sample_fraction: float = 0.1,
        seed: int = 0,
    ) -> "MergeableHistogram":
        """Algorithm 1: build a mergeable histogram of 1-D ``data``.

        ``n_bins`` is the *lower bound* ``Nbin`` of the algorithm — the
        result may have more bins (never fewer, except for degenerate
        near-constant data where one bin suffices).
        """
        data = np.asarray(data)
        if data.ndim != 1 or data.size == 0:
            raise QueryError("histogram needs non-empty 1-D data")
        if n_bins < 1:
            raise QueryError("n_bins must be >= 1")
        data = data.astype(np.float64, copy=False)

        # Line 1: random-sample ~10% for an approximate min/max.  The
        # estimate only seeds the bin width; exactness is restored below.
        n_sample = max(1, int(data.size * sample_fraction))
        if n_sample >= data.size:
            sample = data
        else:
            rng = np.random.default_rng(seed)
            sample = data[rng.integers(0, data.size, size=n_sample)]
        approx_min = float(sample.min())
        approx_max = float(sample.max())

        # Line 2-3: raw width for n_bins bins, rounded down to a power of 2.
        span = approx_max - approx_min
        if span <= 0.0:
            # Near-constant sample: pick a tiny width so the histogram still
            # localizes the value.
            magnitude = max(abs(approx_min), 1.0)
            width = round_down_pow2(magnitude * 2 ** -20)
        else:
            width = round_down_pow2(span / n_bins)

        return cls._count_into_grid(data, width)

    @classmethod
    def from_data_width(cls, data: np.ndarray, width: float) -> "MergeableHistogram":
        """Exact histogram of ``data`` on the aligned grid of ``width``.

        The continuous-ingest delta path uses this to build an epoch's
        delta histogram on the *same* grid as the maintained region
        histogram, so :meth:`merge` (appends / new values) and
        :meth:`subtract` (overwritten old values) are exact bin-for-bin.
        ``width`` must be a positive power of two.
        """
        data = np.asarray(data)
        if data.ndim != 1 or data.size == 0:
            raise QueryError("histogram needs non-empty 1-D data")
        if width != round_down_pow2(width):
            raise QueryError(f"width {width!r} is not a power of two")
        return cls._count_into_grid(data.astype(np.float64, copy=False), width)

    @classmethod
    def _count_into_grid(cls, data: np.ndarray, width: float) -> "MergeableHistogram":
        """Exact O(N) counting pass on the aligned grid of ``width``."""
        true_min = float(data.min())
        true_max = float(data.max())
        # Lines 4-5: anchor the grid; alignment to the width keeps all
        # boundaries in {k * width} exactly.
        start = math.floor(true_min / width) * width
        n_bins = int(math.floor((true_max - start) / width)) + 1
        # Guard against pathological widths producing absurd bin counts
        # (e.g. one extreme outlier): coarsen until manageable.
        while n_bins > 1 << 20:
            width *= 2.0
            start = math.floor(true_min / width) * width
            n_bins = int(math.floor((true_max - start) / width)) + 1

        # Lines 6-18, vectorized: find each element's bin and aggregate.
        idx = np.floor((data - start) / width).astype(np.int64)
        np.clip(idx, 0, n_bins - 1, out=idx)
        # The division can round across a boundary (e.g. for values a ulp
        # below an edge).  Grid points start + k*width are exact for
        # power-of-two widths, so one corrective comparison restores exact
        # binning: data must satisfy edge(idx) <= data < edge(idx + 1).
        idx -= (data < start + idx * width).astype(np.int64)
        idx += (data >= start + (idx + 1) * width).astype(np.int64)
        np.clip(idx, 0, n_bins - 1, out=idx)
        counts = np.bincount(idx, minlength=n_bins)
        return cls(
            bin_width=width,
            start=start,
            counts=counts,
            data_min=true_min,
            data_max=true_max,
        )

    # -------------------------------------------------------------- inspection
    @property
    def n_bins(self) -> int:
        return int(self.counts.size)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def boundaries(self) -> np.ndarray:
        """``n_bins + 1`` bin edges."""
        return self.start + np.arange(self.n_bins + 1, dtype=np.float64) * self.bin_width

    def bin_range(self, i: int) -> Tuple[float, float]:
        """Half-open value range ``[lo, hi)`` of bin ``i``."""
        return (self.start + i * self.bin_width, self.start + (i + 1) * self.bin_width)

    @property
    def nbytes(self) -> int:
        """Approximate serialized size (counts + edges + header) — what the
        metadata service pays to store/ship this histogram."""
        return self.counts.nbytes + (self.n_bins + 1) * 8 + 32

    # -------------------------------------------------------------- estimation
    def overlaps(self, interval: Interval) -> bool:
        """Region-elimination test using the true min/max (§III-D2:
        *"Histograms contain the minimum and maximum value ... which we can
        use to quickly determine whether the region has any element that
        satisfies the query condition."*)."""
        return interval.overlaps_range(self.data_min, self.data_max)

    def estimate_hits(self, interval: Interval) -> Tuple[int, int]:
        """Lower/upper bounds on the number of elements in ``interval``.

        Upper bound counts all bins fully **or partially** overlapping the
        condition; the lower bound counts only fully-overlapping bins
        (§III-D2).  Bin content ranges are tightened with the true data
        min/max so edge bins don't inflate the upper bound.
        """
        if not self.overlaps(interval):
            return (0, 0)
        lo_edges = self.boundaries[:-1]
        hi_edges = self.boundaries[1:]
        # Actual value extent inside each bin (edge bins are narrower).
        content_lo = np.maximum(lo_edges, self.data_min)
        content_hi = np.minimum(hi_edges, self.data_max)
        q_lo, q_hi = interval.finite_bounds()

        # Partial overlap: the bin's content range intersects the interval.
        # An open endpoint excludes bins that touch it only at a point.
        partial = np.ones(self.n_bins, dtype=bool)
        if interval.lo is not None:
            partial &= (content_hi >= q_lo) if interval.lo_closed else (content_hi > q_lo)
        if interval.hi is not None:
            partial &= (content_lo <= q_hi) if interval.hi_closed else (content_lo < q_hi)

        # Full overlap: the bin's content range lies inside the interval.
        full = partial.copy()
        if interval.lo is not None:
            full &= (content_lo > q_lo) | ((content_lo == q_lo) & interval.lo_closed)
        if interval.hi is not None:
            full &= (content_hi < q_hi) | ((content_hi == q_hi) & interval.hi_closed)

        upper = int(self.counts[partial].sum())
        lower = int(self.counts[full].sum())
        return (lower, upper)

    def estimate_selectivity(self, interval: Interval) -> Tuple[float, float]:
        """(lower, upper) selectivity bounds as fractions of total count."""
        lower, upper = self.estimate_hits(interval)
        total = self.total
        if total == 0:
            return (0.0, 0.0)
        return (lower / total, upper / total)

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate from the bin counts.

        Locates the bin holding the ``q``-th cumulative count and
        interpolates linearly inside it, with the bin's value range
        tightened to the true data extrema so edge bins cannot push the
        estimate outside ``[data_min, data_max]``.  Exact at ``q = 0``
        and ``q = 1`` (the recorded extrema); in between the error is
        bounded by one bin width — the same resolution every other
        estimate this histogram serves has.
        """
        if not (0.0 <= q <= 1.0):
            raise QueryError(f"quantile {q!r} outside [0, 1]")
        total = self.total
        if total == 0:
            raise QueryError("quantile of an empty histogram")
        if q == 0.0:
            return self.data_min
        if q == 1.0:
            return self.data_max
        target = q * total
        cum = np.cumsum(self.counts)
        i = int(np.searchsorted(cum, target, side="left"))
        i = min(i, self.n_bins - 1)
        below = float(cum[i - 1]) if i > 0 else 0.0
        in_bin = float(self.counts[i])
        frac = 0.0 if in_bin == 0.0 else (target - below) / in_bin
        lo, hi = self.bin_range(i)
        lo = max(lo, self.data_min)
        hi = min(hi, self.data_max)
        return float(lo + frac * (hi - lo))

    # ----------------------------------------------------------------- merging
    def coarsened(self, new_width: float) -> "MergeableHistogram":
        """Re-bin onto a coarser aligned grid (``new_width`` must be a
        power-of-two multiple of ``bin_width``).  Exact: every fine bin maps
        wholly into one coarse bin because the grids nest."""
        if new_width == self.bin_width:
            return self
        ratio = new_width / self.bin_width
        # The class invariant requires power-of-two widths, so the ratio
        # must itself be a power of two (2, 4, 8, ...).
        if ratio < 2 or ratio != int(ratio) or (int(ratio) & (int(ratio) - 1)) != 0:
            raise QueryError(
                f"cannot coarsen width {self.bin_width} to {new_width}: "
                "not a power-of-two multiple"
            )
        new_start = math.floor(self.start / new_width) * new_width
        # Index of each fine bin's coarse parent.  Both the ratio and the
        # fine-bin offset can exceed int64 when the widths differ by a huge
        # power of two (e.g. 2^-56 vs 2^8), so fall back to Python-int
        # arithmetic outside the safe range; the *coarse* indexes are
        # always small because offset_bins < ratio.  The offset itself is
        # computed in exact rationals: at extreme width ratios (e.g. a
        # subnormal-width grid coarsened onto a 2^-20 grid) the float
        # subtraction ``self.start - new_start`` absorbs the fine start
        # entirely and would shift every fine bin by the lost amount.
        ratio_i = int(ratio)
        offset_bins = int(
            (Fraction(self.start) - Fraction(new_start)) / Fraction(self.bin_width)
        )
        if ratio_i < (1 << 62) and offset_bins + self.n_bins < (1 << 62):
            fine_idx = offset_bins + np.arange(self.n_bins, dtype=np.int64)
            coarse_idx = fine_idx // ratio_i
        else:
            coarse_idx = np.fromiter(
                ((offset_bins + k) // ratio_i for k in range(self.n_bins)),
                dtype=np.int64,
                count=self.n_bins,
            )
        n_coarse = int(coarse_idx[-1]) + 1
        new_counts = np.zeros(n_coarse, dtype=np.int64)
        np.add.at(new_counts, coarse_idx, self.counts)
        return MergeableHistogram(
            bin_width=new_width,
            start=new_start,
            counts=new_counts,
            data_min=self.data_min,
            data_max=self.data_max,
        )

    def merge(self, other: "MergeableHistogram") -> "MergeableHistogram":
        """Merge two mergeable histograms exactly (§IV merging procedure:
        coarsen to the larger width, then aggregate counts bin-by-bin)."""
        width = max(self.bin_width, other.bin_width)
        a = self.coarsened(width)
        b = other.coarsened(width)
        start = min(a.start, b.start)
        end = max(a.start + a.n_bins * width, b.start + b.n_bins * width)
        n_bins = round((end - start) / width)
        counts = np.zeros(n_bins, dtype=np.int64)
        for h in (a, b):
            off = round((h.start - start) / width)
            counts[off : off + h.n_bins] += h.counts
        return MergeableHistogram(
            bin_width=width,
            start=start,
            counts=counts,
            data_min=min(self.data_min, other.data_min),
            data_max=max(self.data_max, other.data_max),
        )

    def subtract(
        self,
        other: "MergeableHistogram",
        data_min: float = None,
        data_max: float = None,
    ) -> "MergeableHistogram":
        """Exact multiset difference: remove ``other``'s counts from this
        histogram (the inverse of :meth:`merge` for a sub-multiset).

        ``other`` must be at the same or a finer power-of-two width — its
        grid then nests into this one exactly, so the subtraction is
        bin-for-bin exact.  Raises when any bin would go negative (i.e.
        ``other`` counts elements this histogram never held).

        The extrema of a difference cannot be derived from the operands
        (removing the minimum says nothing about the runner-up), so the
        caller supplies the true ``data_min``/``data_max`` of the
        remaining multiset; omitted, this histogram's extrema are kept —
        only sound when the caller proved neither extremum was removed.
        """
        width = self.bin_width
        if other.bin_width > width:
            raise QueryError(
                f"cannot subtract width {other.bin_width} from finer "
                f"width {width}"
            )
        o = other.coarsened(width) if other.bin_width < width else other
        off = round((o.start - self.start) / width)
        if off < 0 or off + o.n_bins > self.n_bins:
            raise QueryError(
                "subtrahend grid extends outside this histogram's grid"
            )
        counts = self.counts.copy()
        counts[off : off + o.n_bins] -= o.counts
        if (counts < 0).any():
            raise QueryError("subtract would drive a bin count negative")
        return MergeableHistogram(
            bin_width=width,
            start=self.start,
            counts=counts,
            data_min=self.data_min if data_min is None else float(data_min),
            data_max=self.data_max if data_max is None else float(data_max),
        )

    def equivalent(self, other: "MergeableHistogram") -> bool:
        """Whether two histograms describe the *same multiset* at the
        same extrema: coarsened onto their common (coarser) grid, the
        aligned counts must match bin-for-bin and the true min/max must
        be equal.  This is the exactness oracle for incrementally
        maintained histograms vs from-scratch rebuilds — grids may differ
        (sampling picks the width), the content may not.
        """
        if self.data_min != other.data_min or self.data_max != other.data_max:
            return False
        if self.total != other.total:
            return False
        width = max(self.bin_width, other.bin_width)
        a = self.coarsened(width)
        b = other.coarsened(width)
        start = min(a.start, b.start)
        end = max(a.start + a.n_bins * width, b.start + b.n_bins * width)
        n = round((end - start) / width)
        ca = np.zeros(n, dtype=np.int64)
        cb = np.zeros(n, dtype=np.int64)
        ca[round((a.start - start) / width) :][: a.n_bins] = a.counts
        cb[round((b.start - start) / width) :][: b.n_bins] = b.counts
        return bool(np.array_equal(ca, cb))

    @classmethod
    def merge_many(cls, histograms: Sequence["MergeableHistogram"]) -> "MergeableHistogram":
        """Merge a non-empty sequence in O(total bins): coarsen all to the
        max width, then add into one span-covering count array."""
        if not histograms:
            raise QueryError("merge_many needs at least one histogram")
        width = max(h.bin_width for h in histograms)
        coarse = [h.coarsened(width) for h in histograms]
        start = min(h.start for h in coarse)
        end = max(h.start + h.n_bins * width for h in coarse)
        n_bins = round((end - start) / width)
        counts = np.zeros(n_bins, dtype=np.int64)
        for h in coarse:
            off = round((h.start - start) / width)
            counts[off : off + h.n_bins] += h.counts
        return cls(
            bin_width=width,
            start=start,
            counts=counts,
            data_min=min(h.data_min for h in histograms),
            data_max=max(h.data_max for h in histograms),
        )

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        """Plain-dict form for the metadata service / transport layer."""
        return {
            "bin_width": self.bin_width,
            "start": self.start,
            "counts": self.counts.tolist(),
            "data_min": self.data_min,
            "data_max": self.data_max,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MergeableHistogram":
        return cls(
            bin_width=float(d["bin_width"]),
            start=float(d["start"]),
            counts=np.asarray(d["counts"], dtype=np.int64),
            data_min=float(d["data_min"]),
            data_max=float(d["data_max"]),
        )
