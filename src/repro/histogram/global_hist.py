"""Global histograms: merged per-region histograms for a whole object.

§III-D2: *"further performance improvement can be achieved if we can merge
the local histograms of different regions and obtain a 'global' histogram of
an entire object. As the metadata is cached in all servers after the
metadata distribution, such a global histogram can be used multiple times
with very low access latency when serving a series of queries."*

:class:`GlobalHistogram` wraps the merged :class:`MergeableHistogram` with
provenance (which regions it covers) and the planner-facing helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import QueryError
from ..interval import Interval
from .mergeable import MergeableHistogram

__all__ = ["GlobalHistogram"]


@dataclass
class GlobalHistogram:
    """Merged histogram of an entire object plus per-region min/max index.

    ``region_minmax`` keeps each contributing region's true extrema so the
    planner can prune regions without touching per-region histograms again
    — this is the "region elimination" path of §III-D2 executed against
    server-cached metadata only.
    """

    merged: MergeableHistogram
    #: region id → (data_min, data_max)
    region_minmax: Dict[int, Tuple[float, float]]

    @classmethod
    def build(
        cls, region_histograms: Dict[int, MergeableHistogram]
    ) -> "GlobalHistogram":
        """Merge per-region histograms (keyed by region id) into one."""
        if not region_histograms:
            raise QueryError("cannot build a global histogram from zero regions")
        merged = MergeableHistogram.merge_many(list(region_histograms.values()))
        minmax = {
            rid: (h.data_min, h.data_max) for rid, h in region_histograms.items()
        }
        return cls(merged=merged, region_minmax=minmax)

    # ------------------------------------------------------------ planner api
    @property
    def total(self) -> int:
        return self.merged.total

    @property
    def n_regions(self) -> int:
        return len(self.region_minmax)

    def estimate_selectivity(self, interval: Interval) -> Tuple[float, float]:
        """(lower, upper) selectivity bounds over the whole object."""
        return self.merged.estimate_selectivity(interval)

    def estimate_hits(self, interval: Interval) -> Tuple[int, int]:
        return self.merged.estimate_hits(interval)

    def surviving_regions(self, interval: Interval) -> List[int]:
        """Region ids that may contain matches (min/max overlap test);
        everything else is eliminated without any I/O."""
        return [
            rid
            for rid, (lo, hi) in self.region_minmax.items()
            if interval.overlaps_range(lo, hi)
        ]

    def eliminated_fraction(self, interval: Interval) -> float:
        """Fraction of regions pruned for ``interval`` — observability for
        the region-size ablation."""
        if not self.region_minmax:
            return 0.0
        return 1.0 - len(self.surviving_regions(interval)) / len(self.region_minmax)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            "merged": self.merged.to_dict(),
            "region_minmax": {int(k): list(v) for k, v in self.region_minmax.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "GlobalHistogram":
        return cls(
            merged=MergeableHistogram.from_dict(d["merged"]),
            region_minmax={int(k): (float(v[0]), float(v[1])) for k, v in d["region_minmax"].items()},
        )
