"""Global-histogram subsystem — the paper's primary algorithmic
contribution (§III-D2 and §IV).

* :class:`MergeableHistogram` — Algorithm 1: per-region histograms with
  power-of-two bin widths on an aligned grid, mergeable with no global
  communication.
* :class:`GlobalHistogram` — the merged whole-object histogram plus the
  per-region min/max index used for region elimination.
* selectivity estimation and multi-object condition ordering.
* :class:`EqualWidthHistogram` / :class:`EqualHeightHistogram` — classical
  non-mergeable baselines for the ablation benches.
"""

from .global_hist import GlobalHistogram
from .mergeable import MergeableHistogram, round_down_pow2
from .selectivity import SelectivityEstimate, estimate, order_by_selectivity
from .uniform import EqualHeightHistogram, EqualWidthHistogram

__all__ = [
    "GlobalHistogram",
    "MergeableHistogram",
    "round_down_pow2",
    "SelectivityEstimate",
    "estimate",
    "order_by_selectivity",
    "EqualHeightHistogram",
    "EqualWidthHistogram",
]
