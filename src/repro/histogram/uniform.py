"""Classical equal-width and equal-height histograms.

§III-D2 names the two common binning methods; neither is mergeable across
regions without pre-agreed boundaries (the problem Algorithm 1 solves), so
these serve as the *ablation baseline*: same estimation API, but ``merge``
raises unless the boundaries happen to match exactly — demonstrating why the
paper needed the power-of-two scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import QueryError
from ..interval import Interval

__all__ = ["EqualWidthHistogram", "EqualHeightHistogram"]


@dataclass
class _BoundaryHistogram:
    """Shared machinery: explicit boundary array + counts."""

    boundaries: np.ndarray  # n_bins + 1 edges, ascending
    counts: np.ndarray      # n_bins
    data_min: float
    data_max: float

    def __post_init__(self) -> None:
        self.boundaries = np.asarray(self.boundaries, dtype=np.float64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.boundaries.size != self.counts.size + 1:
            raise QueryError("boundaries must have n_bins + 1 entries")
        if np.any(np.diff(self.boundaries) < 0):
            raise QueryError("boundaries must be non-decreasing")

    @property
    def n_bins(self) -> int:
        return int(self.counts.size)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def overlaps(self, interval: Interval) -> bool:
        return interval.overlaps_range(self.data_min, self.data_max)

    def estimate_hits(self, interval: Interval) -> Tuple[int, int]:
        """Same lower/upper bin-overlap bounds as the mergeable histogram."""
        if not self.overlaps(interval):
            return (0, 0)
        lo_edges = self.boundaries[:-1]
        hi_edges = self.boundaries[1:]
        content_lo = np.maximum(lo_edges, self.data_min)
        content_hi = np.minimum(hi_edges, self.data_max)
        q_lo, q_hi = interval.finite_bounds()

        partial = np.ones(self.n_bins, dtype=bool)
        if interval.lo is not None:
            partial &= (content_hi >= q_lo) if interval.lo_closed else (content_hi > q_lo)
        if interval.hi is not None:
            partial &= (content_lo <= q_hi) if interval.hi_closed else (content_lo < q_hi)

        full = partial.copy()
        if interval.lo is not None:
            full &= (content_lo > q_lo) | ((content_lo == q_lo) & interval.lo_closed)
        if interval.hi is not None:
            full &= (content_hi < q_hi) | ((content_hi == q_hi) & interval.hi_closed)

        return (int(self.counts[full].sum()), int(self.counts[partial].sum()))

    def estimate_selectivity(self, interval: Interval) -> Tuple[float, float]:
        lower, upper = self.estimate_hits(interval)
        total = self.total
        if total == 0:
            return (0.0, 0.0)
        return (lower / total, upper / total)

    def merge(self, other: "_BoundaryHistogram") -> "_BoundaryHistogram":
        """Merging requires *identical* boundaries — the limitation that
        motivates Algorithm 1 (§IV: pre-determined boundaries are
        impractical without a costly global scan)."""
        if self.boundaries.shape != other.boundaries.shape or not np.array_equal(
            self.boundaries, other.boundaries
        ):
            raise QueryError(
                "cannot merge histograms with different bin boundaries; "
                "use MergeableHistogram (Algorithm 1) for merge support"
            )
        return type(self)(
            boundaries=self.boundaries.copy(),
            counts=self.counts + other.counts,
            data_min=min(self.data_min, other.data_min),
            data_max=max(self.data_max, other.data_max),
        )


class EqualWidthHistogram(_BoundaryHistogram):
    """Fixed number of equal-width bins spanning [min, max]."""

    @classmethod
    def from_data(cls, data: np.ndarray, n_bins: int = 64) -> "EqualWidthHistogram":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 1 or data.size == 0:
            raise QueryError("histogram needs non-empty 1-D data")
        lo, hi = float(data.min()), float(data.max())
        if lo == hi:
            hi = lo + 1.0
        counts, edges = np.histogram(data, bins=n_bins, range=(lo, hi))
        return cls(boundaries=edges, counts=counts, data_min=lo, data_max=float(data.max()))


class EqualHeightHistogram(_BoundaryHistogram):
    """Quantile (equal-height) bins: ~same count per bin."""

    @classmethod
    def from_data(cls, data: np.ndarray, n_bins: int = 64) -> "EqualHeightHistogram":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 1 or data.size == 0:
            raise QueryError("histogram needs non-empty 1-D data")
        qs = np.linspace(0.0, 1.0, n_bins + 1)
        edges = np.quantile(data, qs)
        # Collapse duplicate quantiles (heavy ties) while keeping edges valid.
        edges = np.maximum.accumulate(edges)
        counts, _ = np.histogram(data, bins=edges)
        return cls(
            boundaries=edges,
            counts=counts,
            data_min=float(data.min()),
            data_max=float(data.max()),
        )
