"""Per-figure benchmark drivers: one function per table/figure of the
paper's evaluation (§VI), each returning structured rows and printing the
same series the paper plots.

| Paper artifact | Driver |
|----------------|--------|
| Fig. 3 (a–f)   | :func:`run_fig3` — single-object queries × region sizes |
| Fig. 4         | :func:`run_fig4` — multi-object queries at 32 MB |
| Fig. 5         | :func:`run_fig5` — BOSS metadata+data queries |
| Fig. 6         | :func:`run_fig6` — server-count scaling |
| §V index size  | :func:`run_index_size` |
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


from ..baselines.hdf5_fullscan import HDF5FullScanEngine
from ..interval import Interval
from ..query.executor import QueryEngine
from ..strategies import Strategy
from ..types import MB
from ..workloads.queries import (
    QuerySpec,
    boss_flux_windows,
    multi_object_queries,
    scaling_query,
    single_object_queries,
)
from .harness import (
    PAPER_REGION_SIZES,
    BenchScale,
    QueryRow,
    build_boss_system,
    build_vpic_system,
    get_vpic_dataset,
    run_hdf5_series,
    run_pdc_series,
    scale_from_env,
)
from .report import format_kv_table, format_series_table, format_speedup_summary

__all__ = ["run_fig3", "run_fig4", "run_fig5", "run_fig6", "run_index_size"]

#: Series order used by the paper's plots.
_PDC_SERIES = (
    ("PDC-F", Strategy.FULL_SCAN, True),
    ("PDC-H", Strategy.HISTOGRAM, False),
    ("PDC-HI", Strategy.HIST_INDEX, False),
    ("PDC-SH", Strategy.SORT_HIST, False),
)


def _vpic_series_for(
    scale: BenchScale,
    region_size: int,
    specs: Sequence[QuerySpec],
    variables: Sequence[str],
    series_filter: Optional[Sequence[str]] = None,
    n_servers: Optional[int] = None,
) -> Dict[str, List[QueryRow]]:
    """Run HDF5-F + the four PDC configurations on one region size.

    Each approach gets a fresh deployment (its own caches), like separate
    runs on Cori; all share the same generated dataset.
    """
    ds = get_vpic_dataset(scale)
    wanted = set(series_filter or ("HDF5-F", "PDC-F", "PDC-H", "PDC-HI", "PDC-SH"))
    out: Dict[str, List[QueryRow]] = {}

    if "HDF5-F" in wanted:
        system, _ = build_vpic_system(
            scale, region_size, variables, dataset=ds, n_servers=n_servers
        )
        out["HDF5-F"] = run_hdf5_series(system, ds, specs)

    for label, strategy, preload in _PDC_SERIES:
        if label not in wanted:
            continue
        with_index = variables if strategy is Strategy.HIST_INDEX else ()
        sorted_by = "Energy" if strategy is Strategy.SORT_HIST else None
        system, _ = build_vpic_system(
            scale,
            region_size,
            variables,
            with_index=with_index,
            sorted_by=sorted_by,
            dataset=ds,
            n_servers=n_servers,
        )
        out[label] = run_pdc_series(system, ds, specs, strategy, preload=preload)
    return out


def run_fig3(
    scale: Optional[BenchScale] = None,
    region_sizes: Sequence[int] = PAPER_REGION_SIZES,
    n_queries: int = 15,
    quiet: bool = False,
) -> Dict[int, Dict[str, List[QueryRow]]]:
    """Fig. 3: single-object (Energy) query performance across approaches
    and region sizes, 15 queries of increasing selectivity."""
    scale = scale or scale_from_env()
    specs = single_object_queries(n_queries)
    results: Dict[int, Dict[str, List[QueryRow]]] = {}
    for rs in region_sizes:
        series = _vpic_series_for(scale, rs, specs, variables=("Energy",))
        results[rs] = series
        if not quiet:
            print(
                format_series_table(
                    f"Fig 3 — single-object queries, {rs // MB} MB regions "
                    f"({scale.n_servers} servers, scale={scale.name})",
                    series,
                )
            )
            print(format_speedup_summary(series, baseline="HDF5-F"))
            print()
    return results


def run_fig4(
    scale: Optional[BenchScale] = None,
    region_size: int = 32 * MB,
    quiet: bool = False,
) -> Dict[str, List[QueryRow]]:
    """Fig. 4: six multi-object (Energy, x, y, z) queries at the best
    region size (32 MB)."""
    scale = scale or scale_from_env()
    specs = multi_object_queries()
    series = _vpic_series_for(
        scale, region_size, specs, variables=("Energy", "x", "y", "z")
    )
    if not quiet:
        print(
            format_series_table(
                f"Fig 4 — multi-object queries, {region_size // MB} MB regions "
                f"({scale.n_servers} servers, scale={scale.name})",
                series,
            )
        )
        print(format_speedup_summary(series, baseline="HDF5-F"))
    return series


def run_fig5(
    scale: Optional[BenchScale] = None,
    quiet: bool = False,
) -> Dict[str, List[QueryRow]]:
    """Fig. 5: metadata (RADEG/DECDEG) + data (flux window) queries on the
    BOSS catalog: HDF5 traversal vs PDC-H vs PDC-HI."""
    scale = scale or scale_from_env()
    windows = boss_flux_windows()
    tag_cond = {"RADEG": 153.17, "DECDEG": 23.06}

    series: Dict[str, List[QueryRow]] = {}

    # HDF5: full traversal per query.
    system, ds = build_boss_system(scale)
    h5 = HDF5FullScanEngine(system)
    all_names = [f.name for f in ds.fibers]
    rows = []
    for lo, hi in windows:
        iv = Interval(lo=lo, hi=hi, lo_closed=False, hi_closed=False)
        res = h5.boss_traverse(tag_cond, iv, all_names)
        rows.append(
            QueryRow(
                label=f"{lo:g}<flux<{hi:g}",
                selectivity=ds.flux_selectivity(lo, hi),
                nhits=res.nhits,
                query_s=res.elapsed_s,
            )
        )
    series["HDF5"] = rows

    # One PDC deployment serves both configurations: run histogram-only
    # first, then build indexes and re-run cold (caches dropped).
    system, ds = build_boss_system(scale)
    for label, with_index in (("PDC-H", False), ("PDC-HI", True)):
        if with_index:
            for fiber in ds.fibers:
                system.build_index(fiber.name)
            system.drop_all_caches()
        engine = QueryEngine(system)
        strategy = Strategy.HIST_INDEX if with_index else Strategy.HISTOGRAM
        rows = []
        for lo, hi in windows:
            iv = Interval(lo=lo, hi=hi, lo_closed=False, hi_closed=False)
            res = engine.metadata_data_query(tag_cond, iv, strategy=strategy)
            rows.append(
                QueryRow(
                    label=f"{lo:g}<flux<{hi:g}",
                    selectivity=ds.flux_selectivity(lo, hi),
                    nhits=res.total_hits,
                    query_s=res.elapsed_s,
                )
            )
        series[label] = rows

    if not quiet:
        print(
            format_series_table(
                f"Fig 5 — BOSS metadata+data queries ({ds.n_objects} objects, "
                f"{scale.n_servers} servers, scale={scale.name})",
                series,
                show_get_data=False,
            )
        )
        print(format_speedup_summary(series, baseline="HDF5"))
    return series


def run_fig6(
    scale: Optional[BenchScale] = None,
    server_counts: Sequence[int] = (32, 64, 128, 256, 512),
    quiet: bool = False,
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 6: one multi-object query (~0.011 % selectivity) across server
    counts; PDC-H / PDC-HI / PDC-SH (full-scan omitted, as in the paper)."""
    scale = scale or scale_from_env()
    spec = scaling_query()
    results: Dict[str, List[Tuple[int, float]]] = {"PDC-H": [], "PDC-HI": [], "PDC-SH": []}
    for n in server_counts:
        series = _vpic_series_for(
            scale,
            32 * MB,
            [spec],
            variables=("Energy", "x", "y", "z"),
            series_filter=("PDC-H", "PDC-HI", "PDC-SH"),
            n_servers=n,
        )
        for label in results:
            results[label].append((n, series[label][0].query_s))
    if not quiet:
        rows = []
        for n_idx, n in enumerate(server_counts):
            cells = ", ".join(
                f"{label}={results[label][n_idx][1] * 1e3:.2f}ms" for label in results
            )
            rows.append((f"{n} servers", cells))
        print(format_kv_table(f"Fig 6 — scaling ({spec.label})", rows))
    return results


def run_index_size(
    scale: Optional[BenchScale] = None,
    region_sizes: Sequence[int] = (4 * MB, 32 * MB, 128 * MB),
    quiet: bool = False,
) -> Dict[int, float]:
    """§V: Fastbit index storage footprint as a fraction of object data,
    per region size (paper: 15–17 % of the 7-variable total, i.e. roughly
    1.1× the indexed Energy object)."""
    scale = scale or scale_from_env()
    ds = get_vpic_dataset(scale)
    out: Dict[int, float] = {}
    rows = []
    for rs in region_sizes:
        system, _ = build_vpic_system(
            scale, rs, variables=("Energy",), with_index=("Energy",), dataset=ds
        )
        frac = system.index_size_bytes("Energy") / system.get_object("Energy").data.nbytes
        out[rs] = frac
        rows.append((f"{rs // MB} MB regions", f"{frac * 100:.1f}% of object data"))
    if not quiet:
        print(format_kv_table("Index size (Energy object)", rows))
    return out
