"""ASCII rendering of benchmark results — the "rows/series the paper
reports", printable from any bench run."""

from __future__ import annotations

from typing import Dict, List, Sequence

from .harness import QueryRow

__all__ = ["format_series_table", "format_speedup_summary", "format_kv_table", "format_series_chart"]


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}us"


def format_series_table(
    title: str,
    series: Dict[str, List[QueryRow]],
    show_get_data: bool = True,
) -> str:
    """One table: rows = queries, columns = approaches.

    Query/get-data times per approach; the label/selectivity columns come
    from the first series (all series run identical query sequences).
    """
    labels = list(series)
    first = series[labels[0]]
    lines = [title, "=" * len(title)]
    header = f"{'query':<34} {'select%':>9} " + " ".join(f"{l:>12}" for l in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for i, row in enumerate(first):
        cells = []
        for l in labels:
            r = series[l][i]
            t = r.total_s if show_get_data else r.query_s
            cells.append(f"{_fmt_time(t):>12}")
        lines.append(
            f"{row.label:<34} {row.selectivity * 100:>8.4f}% " + " ".join(cells)
        )
    if show_get_data:
        lines.append("")
        lines.append("(cells are query + get-data time; query-only below)")
        for i, row in enumerate(first):
            cells = [f"{_fmt_time(series[l][i].query_s):>12}" for l in labels]
            lines.append(
                f"{row.label:<34} {row.selectivity * 100:>8.4f}% " + " ".join(cells)
            )
    return "\n".join(lines)


def format_speedup_summary(
    series: Dict[str, List[QueryRow]],
    baseline: str,
    use_total: bool = False,
) -> str:
    """Min/max per-query speedup of each approach over ``baseline`` —
    directly comparable to the §VI-A headline factors."""
    base = series[baseline]
    lines = [f"speedup vs {baseline} (query time):"]
    for label, rows in series.items():
        if label == baseline:
            continue
        ratios = []
        for b, r in zip(base, rows):
            tb = b.total_s if use_total else b.query_s
            tr = r.total_s if use_total else r.query_s
            if tr > 0:
                ratios.append(tb / tr)
        if ratios:
            lines.append(
                f"  {label:>8}: {min(ratios):8.1f}x .. {max(ratios):8.1f}x "
                f"(median {sorted(ratios)[len(ratios) // 2]:.1f}x)"
            )
    return "\n".join(lines)


def format_series_chart(
    title: str,
    series: Dict[str, List[QueryRow]],
    width: int = 46,
    use_total: bool = False,
) -> str:
    """Log-scale horizontal bar chart of the series — the figures' visual
    shape without a plotting dependency.

    One block per query; within a block one bar per approach, scaled
    logarithmically across the whole figure so the paper's order-of-
    magnitude spreads stay visible.
    """
    import math

    labels = list(series)
    values = [
        (r.total_s if use_total else r.query_s)
        for rows in series.values()
        for r in rows
    ]
    positive = [v for v in values if v > 0]
    if not positive:
        return title + "\n(no data)"
    lo = math.log10(min(positive))
    hi = math.log10(max(positive))
    span = max(hi - lo, 1e-9)

    def bar(v: float) -> str:
        if v <= 0:
            return ""
        frac = (math.log10(v) - lo) / span
        return "#" * max(1, int(round(frac * width)))

    lines = [title, "=" * len(title), f"(log scale, {'#' * 10} spans decades)"]
    first = series[labels[0]]
    label_w = max(len(l) for l in labels)
    for i, row in enumerate(first):
        lines.append(f"{row.label}  ({row.selectivity * 100:.4f}%)")
        for l in labels:
            r = series[l][i]
            v = r.total_s if use_total else r.query_s
            lines.append(f"  {l:<{label_w}} {_fmt_time(v)} |{bar(v)}")
    return "\n".join(lines)


def format_kv_table(title: str, rows: Sequence[tuple]) -> str:
    """Simple two-column table for scalar results (index sizes, ablations)."""
    lines = [title, "=" * len(title)]
    width = max((len(str(k)) for k, _ in rows), default=8)
    for k, v in rows:
        lines.append(f"{str(k):<{width}}  {v}")
    return "\n".join(lines)
