"""Benchmark harness: builds paper-shaped deployments and runs the query
workloads, producing rows directly comparable to the paper's figures.

Scale presets are selected with ``REPRO_BENCH_SCALE`` (``tiny`` for CI,
``small`` default, ``full`` for the most faithful shapes).  Every preset
keeps the *structure* of the paper's setup — 64 servers, region sizes
4–128 MB (virtual), the same query workload — while the real array sizes
stay laptop-friendly via the ``virtual_scale`` mapping (DESIGN.md §5/6).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from ..baselines.hdf5_fullscan import HDF5FullScanEngine
from ..pdc.system import PDCConfig, PDCSystem
from ..query.executor import QueryEngine
from ..strategies import Strategy
from ..types import MB
from ..workloads.boss import BOSSConfig, BOSSDataset, generate_boss
from ..workloads.queries import QuerySpec, build_pdc_query, spec_truth_mask
from ..workloads.vpic import VPICConfig, VPICDataset, generate_vpic

__all__ = [
    "BenchScale",
    "SCALES",
    "scale_from_env",
    "QueryRow",
    "build_vpic_system",
    "build_boss_system",
    "get_boss_dataset",
    "run_pdc_series",
    "run_hdf5_series",
    "PAPER_REGION_SIZES",
]

#: The paper's region-size sweep (Fig. 3a–f), in virtual bytes.
PAPER_REGION_SIZES = tuple(s * MB for s in (4, 8, 16, 32, 64, 128))


@dataclass(frozen=True)
class BenchScale:
    """One scale preset."""

    name: str
    vpic_particles: int
    #: Virtual elements per real element (sets the cost-model scale).
    virtual_scale: float
    n_servers: int
    boss_objects: int
    boss_fibers_per_plate: int
    boss_flux_samples: int


SCALES: Dict[str, BenchScale] = {
    # CI-friendly: seconds per figure.
    "tiny": BenchScale(
        name="tiny",
        vpic_particles=1 << 16,
        virtual_scale=1024.0,
        n_servers=8,
        boss_objects=2_000,
        boss_fibers_per_plate=200,
        boss_flux_samples=64,
    ),
    # Default: minutes for the full suite, recognizable shapes.
    "small": BenchScale(
        name="small",
        vpic_particles=1 << 21,
        virtual_scale=2048.0,
        n_servers=32,
        boss_objects=10_000,
        boss_fibers_per_plate=1000,
        boss_flux_samples=128,
    ),
    # Most faithful: 4 Mi particles, 4096 regions at 4 MB.
    "full": BenchScale(
        name="full",
        vpic_particles=1 << 22,
        virtual_scale=4096.0,
        n_servers=64,
        boss_objects=50_000,
        boss_fibers_per_plate=1000,
        boss_flux_samples=256,
    ),
}


def scale_from_env(default: str = "small") -> BenchScale:
    """Preset named by ``$REPRO_BENCH_SCALE`` (tiny/small/full)."""
    name = os.environ.get("REPRO_BENCH_SCALE", default).strip().lower()
    if name not in SCALES:
        raise KeyError(f"REPRO_BENCH_SCALE={name!r}; valid: {sorted(SCALES)}")
    return SCALES[name]


@dataclass
class QueryRow:
    """One measured point: a query under one configuration."""

    label: str
    selectivity: float
    nhits: int
    query_s: float
    get_data_s: float = 0.0
    #: Simulated seconds per trace category for this trial (populated only
    #: when the system under test has a real tracer installed).
    span_summary: Optional[Dict[str, float]] = None

    @property
    def total_s(self) -> float:
        return self.query_s + self.get_data_s


# ------------------------------------------------------------------ builders
_VPIC_CACHE: Dict[Tuple[int, int], VPICDataset] = {}
_BOSS_CACHE: Dict[Tuple[int, int, int], BOSSDataset] = {}


def get_vpic_dataset(scale: BenchScale, seed: int = 2020) -> VPICDataset:
    """Generate (or reuse) the synthetic particle data for a scale."""
    key = (scale.vpic_particles, seed)
    if key not in _VPIC_CACHE:
        _VPIC_CACHE[key] = generate_vpic(
            VPICConfig(n_particles=scale.vpic_particles, seed=seed)
        )
    return _VPIC_CACHE[key]


def build_vpic_system(
    scale: BenchScale,
    region_size_bytes: int = 32 * MB,
    variables: Sequence[str] = ("Energy", "x", "y", "z"),
    with_index: Sequence[str] = (),
    sorted_by: Optional[str] = None,
    n_servers: Optional[int] = None,
    dataset: Optional[VPICDataset] = None,
) -> Tuple[PDCSystem, VPICDataset]:
    """A PDC deployment loaded with the VPIC variables.

    ``with_index`` builds bitmap indexes for those objects; ``sorted_by``
    builds a sorted replica keyed on that object with the other variables
    as companions (the paper sorts by Energy).
    """
    ds = dataset or get_vpic_dataset(scale)
    cfg = PDCConfig(
        n_servers=n_servers or scale.n_servers,
        region_size_bytes=region_size_bytes,
        virtual_scale=scale.virtual_scale,
    )
    system = PDCSystem(cfg)
    for v in variables:
        system.create_object(v, ds.arrays[v])
    for v in with_index:
        system.build_index(v)
    if sorted_by is not None:
        companions = [v for v in variables if v != sorted_by]
        system.build_sorted_replica(sorted_by, companions)
    return system, ds


def get_boss_dataset(scale: BenchScale) -> BOSSDataset:
    """Generate (or reuse) the synthetic BOSS catalog for a scale."""
    key = (scale.boss_objects, scale.boss_fibers_per_plate, scale.boss_flux_samples)
    if key not in _BOSS_CACHE:
        _BOSS_CACHE[key] = generate_boss(
            BOSSConfig(
                n_objects=scale.boss_objects,
                fibers_per_plate=scale.boss_fibers_per_plate,
                flux_samples=scale.boss_flux_samples,
            )
        )
    return _BOSS_CACHE[key]


def build_boss_system(
    scale: BenchScale,
    with_index: bool = False,
    n_servers: Optional[int] = None,
) -> Tuple[PDCSystem, BOSSDataset]:
    """A PDC deployment loaded with the BOSS fiber catalog."""
    ds = get_boss_dataset(scale)
    cfg = PDCConfig(
        n_servers=n_servers or scale.n_servers,
        # Fibers are small: one region per object, like the paper (§VI-C).
        region_size_bytes=64 * MB,
        virtual_scale=scale.virtual_scale,
    )
    system = PDCSystem(cfg)
    for fiber in ds.fibers:
        system.create_object(fiber.name, fiber.flux, tags=fiber.tags)
        if with_index:
            system.build_index(fiber.name)
    return system, ds


# ------------------------------------------------------------------- runners
def run_pdc_series(
    system: PDCSystem,
    dataset: VPICDataset,
    specs: Sequence[QuerySpec],
    strategy: Strategy,
    preload: bool = False,
    measure_get_data: bool = True,
    get_data_object: str = "Energy",
    verify: bool = True,
) -> List[QueryRow]:
    """Run a query sequence under one strategy; returns one row per query.

    With ``preload=True`` (the PDC-F configuration) all queried objects are
    read into server caches first and the read time is amortized across the
    sequence, as the paper reports (§VI-A).
    """
    engine = QueryEngine(system)
    names = sorted({c[0] for spec in specs for c in spec.conditions})
    amortized = 0.0
    if preload:
        amortized = engine.preload(names) / max(1, len(specs))

    rows: List[QueryRow] = []
    n = dataset.n_particles
    for spec in specs:
        query = build_pdc_query(system, spec)
        query.strategy = strategy
        res = engine.execute(
            query.node, want_selection=True, strategy=strategy
        )
        if verify:
            truth = int(spec_truth_mask(dataset.arrays, spec).sum())
            if res.nhits != truth:
                raise AssertionError(
                    f"{strategy.paper_label} wrong answer on {spec.label}: "
                    f"{res.nhits} != {truth}"
                )
        get_data_s = 0.0
        if measure_get_data and res.selection is not None and res.nhits:
            gd = engine.get_data(res.selection, get_data_object, strategy=strategy)
            get_data_s = gd.elapsed_s
        span_summary = None
        if system.tracer.enabled and res.trace is not None:
            span_summary = system.tracer.summary(res.trace)
        rows.append(
            QueryRow(
                label=spec.label,
                selectivity=res.nhits / n,
                nhits=res.nhits,
                query_s=res.elapsed_s + amortized,
                get_data_s=get_data_s,
                span_summary=span_summary,
            )
        )
    return rows


def run_hdf5_series(
    system: PDCSystem,
    dataset: VPICDataset,
    specs: Sequence[QuerySpec],
    verify: bool = True,
) -> List[QueryRow]:
    """The HDF5-F series: one amortized pre-load + full scans."""
    engine = HDF5FullScanEngine(system)
    names = sorted({c[0] for spec in specs for c in spec.conditions})
    amortized = engine.preload(names) / max(1, len(specs))
    rows: List[QueryRow] = []
    n = dataset.n_particles
    for spec in specs:
        res = engine.query(spec, want_selection=True)
        if verify:
            truth = int(spec_truth_mask(dataset.arrays, spec).sum())
            if res.nhits != truth:
                raise AssertionError(
                    f"HDF5-F wrong answer on {spec.label}: {res.nhits} != {truth}"
                )
        # Hand-optimized code keeps the arrays in each process's memory:
        # get-data is a parallel local gather plus per-process shipping.
        share = max(1, res.nhits // system.n_servers)
        gd_s = system.cost.mem_copy_time(share * 4) + system.cost.net_time(share * 4)
        rows.append(
            QueryRow(
                label=spec.label,
                selectivity=res.nhits / n,
                nhits=res.nhits,
                query_s=res.elapsed_s + amortized,
                get_data_s=gd_s,
            )
        )
    return rows
