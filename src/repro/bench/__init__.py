"""Benchmark harness: scale presets, series runners, per-figure drivers,
and ASCII reporting."""

from .figures import run_fig3, run_fig4, run_fig5, run_fig6, run_index_size
from .harness import (
    PAPER_REGION_SIZES,
    SCALES,
    BenchScale,
    QueryRow,
    build_boss_system,
    build_vpic_system,
    get_boss_dataset,
    get_vpic_dataset,
    run_hdf5_series,
    run_pdc_series,
    scale_from_env,
)
from .report import (
    format_kv_table,
    format_series_chart,
    format_series_table,
    format_speedup_summary,
)

__all__ = [
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_index_size",
    "PAPER_REGION_SIZES",
    "SCALES",
    "BenchScale",
    "QueryRow",
    "build_boss_system",
    "build_vpic_system",
    "get_boss_dataset",
    "get_vpic_dataset",
    "run_hdf5_series",
    "run_pdc_series",
    "scale_from_env",
    "format_kv_table",
    "format_series_chart",
    "format_series_table",
    "format_speedup_summary",
]
