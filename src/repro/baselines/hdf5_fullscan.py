"""HDF5-F: the paper's comparison baseline (§VI).

A *"hand-optimized parallel code using HDF5 to read data stored in HDF5
files and to perform a full scan"*.  The baseline shares the PDC system's
simulated PFS (the ``/hdf5/*.h5`` files carry default striping and an OST
imbalance factor — §III-E credits PDC's data distribution/aggregation for
its ~2× read advantage) but none of PDC's machinery: no regions, no
histograms, no caches beyond holding the arrays in memory after a
pre-load, no metadata service.

Two workloads:

* VPIC-style array queries — ``preload`` once (amortized over the query
  sequence, as the paper reports), then ``query`` per spec;
* BOSS-style traversal — every metadata+data query must re-read and parse
  *all* files, which is exactly why Fig. 5 shows the multi-fold PDC win.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..errors import QueryError
from ..interval import Interval
from ..pdc.system import PDCSystem
from ..storage.costmodel import SimClock
from ..types import MB, QueryOp
from ..workloads.queries import QuerySpec

__all__ = ["HDF5FullScanEngine", "BaselineResult"]

#: Read granularity of the hand-optimized HDF5 reader (virtual bytes).
_CHUNK_BYTES = 8 * MB


@dataclass
class BaselineResult:
    """Outcome of one baseline query."""

    nhits: int
    elapsed_s: float
    coords: Optional[np.ndarray] = None


class HDF5FullScanEngine:
    """Parallel full-scan engine over the ``/hdf5`` comparison files."""

    def __init__(self, system: PDCSystem, n_processes: Optional[int] = None) -> None:
        self.system = system
        self.n_processes = system.n_servers if n_processes is None else n_processes
        if self.n_processes < 1:
            raise QueryError("need at least one process")
        self.clocks = [SimClock(f"h5rank{i}") for i in range(self.n_processes)]
        self._loaded: Set[str] = set()

    # ----------------------------------------------------------------- timing
    def _sync(self) -> float:
        t = max(c.now for c in self.clocks)
        for c in self.clocks:
            c.advance_to(t)
        return t

    @property
    def elapsed(self) -> float:
        return max(c.now for c in self.clocks)

    # ------------------------------------------------------------------- VPIC
    def preload(self, names: Sequence[str]) -> float:
        """Parallel read of each object's HDF5 file into process memory.

        Each process reads a contiguous 1/n share in ``_CHUNK_BYTES``
        accesses.  Charged once; the harness amortizes it across the query
        sequence like the paper does.
        """
        sysm = self.system
        t0 = self._sync()
        for name in names:
            if name in self._loaded:
                continue
            obj = sysm.get_object(name)
            total_elems = obj.n_elements
            share = (total_elems + self.n_processes - 1) // self.n_processes
            chunk_elems = max(
                1, int(_CHUNK_BYTES / (obj.itemsize * sysm.cost.virtual_scale))
            )
            for rank, clock in enumerate(self.clocks):
                start = rank * share
                stop = min(total_elems, start + share)
                if stop <= start:
                    continue
                n_accesses = max(1, math.ceil((stop - start) / chunk_elems))
                # Views are discarded; the read is charged via the clock.
                sysm.pfs.read_extents(
                    obj.hdf5_path,
                    [(start, stop)],
                    clock=None,
                    concurrent_readers=self.n_processes,
                )
                f = sysm.pfs.stat(obj.hdf5_path)
                clock.charge(
                    f.imbalance
                    * sysm.cost.pfs_read_time(
                        (stop - start) * obj.itemsize,
                        n_accesses,
                        f.stripe_count,
                        self.n_processes,
                    ),
                    "pfs_read",
                )
            self._loaded.add(name)
        return self._sync() - t0

    def query(self, spec: QuerySpec, want_selection: bool = False) -> BaselineResult:
        """Full scan: evaluate every condition over the in-memory arrays.

        The first condition scans every element; subsequent conditions
        check only surviving locations (any reasonable hand-written scan
        does this).  Requires :meth:`preload` first.
        """
        sysm = self.system
        names = [c[0] for c in spec.conditions]
        missing = [n for n in names if n not in self._loaded]
        if missing:
            raise QueryError(f"objects not preloaded: {missing}")
        t0 = self._sync()

        # Group conditions per object, in spec order (no selectivity
        # planner here — the baseline has no histograms).
        per_object: Dict[str, Interval] = {}
        order: List[str] = []
        for obj_name, op, value in spec.conditions:
            iv = Interval.from_op(QueryOp(op), value)
            if obj_name in per_object:
                merged = per_object[obj_name].intersect(iv)
                if merged is None:
                    return BaselineResult(nhits=0, elapsed_s=self._sync() - t0)
                per_object[obj_name] = merged
            else:
                per_object[obj_name] = iv
                order.append(obj_name)

        first = sysm.get_object(order[0])
        n = first.n_elements
        per_rank = n / self.n_processes
        for clock in self.clocks:
            clock.charge(sysm.cost.scan_time(int(per_rank)), "scan")
        coords = np.flatnonzero(per_object[order[0]].mask(first.data)).astype(np.int64)

        for obj_name in order[1:]:
            obj = sysm.get_object(obj_name)
            for clock in self.clocks:
                clock.charge(
                    sysm.cost.scan_time(int(coords.size / self.n_processes)), "scan"
                )
            coords = coords[per_object[obj_name].mask(obj.data[coords])]

        # Result shipping: each process streams its share to the parallel
        # application; a small count aggregation lands on rank 0.
        if want_selection and coords.size:
            share = int(coords.size * 8 / self.n_processes)
            for clock in self.clocks:
                clock.charge(sysm.cost.net_time(share), "net")
        self.clocks[0].charge(
            sysm.cost.net_time(16 * self.n_processes, scaled=False), "net"
        )
        elapsed = self._sync() - t0
        return BaselineResult(
            nhits=int(coords.size),
            elapsed_s=elapsed,
            coords=coords if want_selection else None,
        )

    # ------------------------------------------------------------------- BOSS
    def boss_traverse(
        self,
        tag_conditions: Dict[str, object],
        interval: Interval,
        object_names: Sequence[str],
    ) -> BaselineResult:
        """Metadata + data query the HDF5 way: traverse *every* file, parse
        its metadata, and scan the data of matching objects (§VI-C).

        ``object_names`` is the full catalog; work is divided round-robin
        across processes.  No result caching across queries — a traversal
        streams the files.
        """
        sysm = self.system
        t0 = self._sync()
        total_hits = 0
        #: Per-file open+metadata-parse cost (HDF5 attribute reads are
        #: small, latency-bound operations on the PFS).
        per_object_meta_s = 2 * sysm.cost.params.seek_latency_s

        for i, name in enumerate(object_names):
            obj = sysm.get_object(name)
            clock = self.clocks[i % self.n_processes]
            clock.charge(per_object_meta_s, "meta")
            if not obj.meta.matches_tags(tag_conditions):
                continue
            f = sysm.pfs.stat(obj.hdf5_path)
            clock.charge(
                f.imbalance
                * sysm.cost.pfs_read_time(
                    obj.n_elements * obj.itemsize, 1, f.stripe_count, self.n_processes
                ),
                "pfs_read",
            )
            clock.charge(sysm.cost.scan_time(obj.n_elements), "scan")
            total_hits += int(interval.mask(obj.data).sum())

        self.clocks[0].charge(sysm.cost.net_time(16 * len(object_names)), "net")
        return BaselineResult(nhits=total_hits, elapsed_s=self._sync() - t0)
