"""Comparison baselines: the hand-optimized parallel HDF5 full scan
(HDF5-F) and the related-work block index [26] the paper discusses."""

from .block_index import BlockIndexEngine
from .hdf5_fullscan import BaselineResult, HDF5FullScanEngine

__all__ = ["BaselineResult", "BlockIndexEngine", "HDF5FullScanEngine"]
