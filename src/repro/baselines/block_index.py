"""Block index (Wu et al., SC'17 — the paper's reference [26]).

§VIII: *"Block index is proposed to partition a dataset into fixed-size
blocks and record their minimum and maximum values.  To speed up the data
read performance, each block with matching elements is read entirely ...
The PDC-query service and the block index share similar concepts to
divide large data into smaller parts.  However, we use the global
histograms to further optimize querying performance for more complex
multi-object queries."*

This engine implements exactly that comparator: fixed-size blocks with
min/max, whole-block reads of surviving blocks, candidate checking for
later conditions — but **no histograms** (no selectivity estimation, so
multi-object conditions evaluate in user order) and no PDC placement
(reads go to the default-striped comparison files).  The gap between this
and PDC-H isolates what the global histogram adds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..errors import QueryError
from ..interval import Interval
from ..pdc.system import PDCSystem
from ..storage.costmodel import SimClock
from ..types import MB, QueryOp
from ..workloads.queries import QuerySpec
from .hdf5_fullscan import BaselineResult

__all__ = ["BlockIndexEngine"]


@dataclass
class _ObjectBlocks:
    """Per-object block metadata."""

    block_elements: int
    bmin: np.ndarray
    bmax: np.ndarray

    @property
    def n_blocks(self) -> int:
        return int(self.bmin.size)


class BlockIndexEngine:
    """Block-index query evaluation over the comparison HDF5 files."""

    def __init__(
        self,
        system: PDCSystem,
        block_bytes: int = 32 * MB,
        n_processes: Optional[int] = None,
    ) -> None:
        self.system = system
        self.block_bytes = block_bytes
        self.n_processes = system.n_servers if n_processes is None else n_processes
        if self.n_processes < 1:
            raise QueryError("need at least one process")
        self.clocks = [SimClock(f"blk{i}") for i in range(self.n_processes)]
        self._blocks: Dict[str, _ObjectBlocks] = {}
        #: Blocks already read this session (the comparator caches like any
        #: reasonable implementation).
        self._resident: Set[tuple] = set()

    # ------------------------------------------------------------------ build
    def build(self, names: Sequence[str]) -> float:
        """Scan each object once to record per-block min/max (the block
        index's construction pass); returns the simulated build seconds."""
        sysm = self.system
        t0 = self._sync()
        for name in names:
            if name in self._blocks:
                continue
            obj = sysm.get_object(name)
            block_elems = max(
                1, int(self.block_bytes / (obj.itemsize * sysm.cost.virtual_scale))
            )
            n_blocks = math.ceil(obj.n_elements / block_elems)
            bmin = np.empty(n_blocks)
            bmax = np.empty(n_blocks)
            for b in range(n_blocks):
                seg = obj.data[b * block_elems : (b + 1) * block_elems]
                bmin[b] = seg.min()
                bmax[b] = seg.max()
            self._blocks[name] = _ObjectBlocks(block_elems, bmin, bmax)
            # Construction reads the whole file once, in parallel.
            f = sysm.pfs.stat(obj.hdf5_path)
            share = obj.n_elements // self.n_processes + 1
            for clock in self.clocks:
                clock.charge(
                    f.imbalance
                    * sysm.cost.pfs_read_time(
                        share * obj.itemsize,
                        max(1, share // block_elems),
                        f.stripe_count,
                        self.n_processes,
                    )
                    + sysm.cost.scan_time(share),
                    "build",
                )
        return self._sync() - t0

    # ------------------------------------------------------------------ query
    def query(self, spec: QuerySpec, want_selection: bool = False) -> BaselineResult:
        """Evaluate conditions in **user order** (no selectivity planner),
        pruning and reading whole blocks via the min/max index."""
        sysm = self.system
        per_object: Dict[str, Interval] = {}
        order: List[str] = []
        for obj_name, op, value in spec.conditions:
            if obj_name not in self._blocks:
                raise QueryError(f"block index not built for {obj_name!r}")
            iv = Interval.from_op(QueryOp(op), value)
            if obj_name in per_object:
                merged = per_object[obj_name].intersect(iv)
                if merged is None:
                    return BaselineResult(nhits=0, elapsed_s=0.0)
                per_object[obj_name] = merged
            else:
                per_object[obj_name] = iv
                order.append(obj_name)

        t0 = self._sync()
        first = order[0]
        coords = self._eval_first(first, per_object[first])
        for obj_name in order[1:]:
            if coords.size == 0:
                break
            coords = self._eval_candidates(obj_name, per_object[obj_name], coords)

        if want_selection and coords.size:
            share = int(coords.size * 8 / self.n_processes)
            for clock in self.clocks:
                clock.charge(sysm.cost.net_time(share), "net")
        self.clocks[0].charge(
            sysm.cost.net_time(16 * self.n_processes, scaled=False), "net"
        )
        return BaselineResult(
            nhits=int(coords.size),
            elapsed_s=self._sync() - t0,
            coords=coords if want_selection else None,
        )

    # ---------------------------------------------------------------- internals
    def _sync(self) -> float:
        t = max(c.now for c in self.clocks)
        for c in self.clocks:
            c.advance_to(t)
        return t

    def _charge_block_reads(self, name: str, block_ids: np.ndarray) -> None:
        """Whole-block reads of not-yet-resident blocks, split round-robin."""
        sysm = self.system
        obj = sysm.get_object(name)
        blocks = self._blocks[name]
        f = sysm.pfs.stat(obj.hdf5_path)
        cold = [b for b in block_ids if (name, int(b)) not in self._resident]
        readers = max(1, min(self.n_processes, len(cold)))
        for i, b in enumerate(cold):
            clock = self.clocks[int(b) % self.n_processes]
            nbytes = blocks.block_elements * obj.itemsize
            clock.charge(
                f.imbalance
                * sysm.cost.pfs_read_time(nbytes, 1, f.stripe_count, readers),
                "pfs_read",
            )
            self._resident.add((name, int(b)))

    def _eval_first(self, name: str, interval: Interval) -> np.ndarray:
        sysm = self.system
        obj = sysm.get_object(name)
        blocks = self._blocks[name]
        surviving = np.flatnonzero(
            interval.overlaps_range_arrays(blocks.bmin, blocks.bmax)
        )
        self._charge_block_reads(name, surviving)
        per_proc = surviving.size * blocks.block_elements / self.n_processes
        for clock in self.clocks:
            clock.charge(sysm.cost.scan_time(int(per_proc)), "scan")
        return np.flatnonzero(interval.mask(obj.data)).astype(np.int64)

    def _eval_candidates(
        self, name: str, interval: Interval, coords: np.ndarray
    ) -> np.ndarray:
        sysm = self.system
        obj = sysm.get_object(name)
        blocks = self._blocks[name]
        cand_blocks = np.unique(
            np.minimum(coords // blocks.block_elements, blocks.n_blocks - 1)
        )
        keep = interval.overlaps_range_arrays(
            blocks.bmin[cand_blocks], blocks.bmax[cand_blocks]
        )
        cand_blocks = cand_blocks[keep]
        # Coordinates in pruned blocks cannot match.
        coords = coords[
            np.isin(
                np.minimum(coords // blocks.block_elements, blocks.n_blocks - 1),
                cand_blocks,
            )
        ]
        self._charge_block_reads(name, cand_blocks)
        for clock in self.clocks:
            clock.charge(
                sysm.cost.scan_time(int(coords.size / self.n_processes)), "scan"
            )
        return coords[interval.mask(obj.data[coords])]
