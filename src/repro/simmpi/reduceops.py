"""Reduction operators for the simulated MPI runtime.

Mirrors mpi4py's ``MPI.SUM`` / ``MPI.MAX`` / ... constants with plain Python
callables that combine two values pairwise.  All operators work elementwise
on numpy arrays as well as on scalars, matching mpi4py's pickle-based
lower-case ``reduce``/``allreduce`` semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["SUM", "PROD", "MAX", "MIN", "LOR", "LAND", "CONCAT", "reduce_sequence"]

ReduceOp = Callable[[Any, Any], Any]


def SUM(a: Any, b: Any) -> Any:
    return a + b


def PROD(a: Any, b: Any) -> Any:
    return a * b


def MAX(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def MIN(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def LOR(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_or(a, b)
    return bool(a) or bool(b)


def LAND(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_and(a, b)
    return bool(a) and bool(b)


def CONCAT(a: Any, b: Any) -> Any:
    """List/array concatenation — handy for gathering variable-length
    results (e.g. per-server selections)."""
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        return np.concatenate([a, b])
    return list(a) + list(b)


def reduce_sequence(values: Sequence[Any], op: ReduceOp) -> Any:
    """Left fold of ``op`` over a non-empty sequence, in rank order —
    deterministic regardless of thread scheduling."""
    if not values:
        raise ValueError("cannot reduce an empty sequence")
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc
