"""A threaded, deterministic MPI-style communicator.

The PDC client library *"serializes the query conditions and broadcasts
them to all available servers"* and a background thread *"aggregates the
results received from all servers"* (§III-C).  This module provides the
message-passing substrate those components run on: an mpi4py-lookalike
communicator whose ranks are Python threads in one process.

Semantics follow mpi4py's lower-case (pickle-based) API:

* ``send``/``recv`` are blocking point-to-point with (source, tag) matching
  and FIFO ordering per (source, dest, tag) channel;
* messages are deep-copied on send, so no mutable state is shared;
* collectives (``bcast``, ``scatter``, ``gather``, ``allgather``,
  ``reduce``, ``allreduce``, ``alltoall``, ``barrier``) are built from
  point-to-point traffic on a reserved internal tag space, sequenced by a
  per-rank collective counter — correct as long as usage is SPMD, which the
  launcher enforces by construction.

Reductions always fold in rank order (see ``reduce_sequence``), so results
are bit-deterministic regardless of thread scheduling.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import TransportError
from .reduceops import SUM, ReduceOp, reduce_sequence

__all__ = ["Communicator", "CommStats", "Request", "ANY_SOURCE", "ANY_TAG", "CommWorld"]

#: Wildcard source for ``recv``.
ANY_SOURCE = -1
#: Wildcard tag for ``recv``.
ANY_TAG = -1

#: Internal collectives use tags at/above this value; user tags must be below.
_COLL_TAG_BASE = 1 << 30


def _copy_message(obj: Any) -> Any:
    """Deep copy via pickle — models serialization across the wire."""
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class CommStats:
    """Wire traffic counters shared by all ranks of one communicator.

    Every message is attributed to the operation that shipped it
    (``p2p``, ``bcast``, ``scatter``, ``gather``, ``alltoall``);
    composite collectives (``allgather``, ``reduce``, ``allreduce``)
    decompose into the gather/bcast traffic they generate.  Byte counts
    are serialized (pickled) payload sizes — the wire form.
    """

    def __init__(self, metrics=None) -> None:
        self._lock = threading.Lock()
        self.messages_total = 0
        self.bytes_total = 0
        self.messages_by_op: dict = {}
        self.bytes_by_op: dict = {}
        #: Fault-injection traffic: dropped (retransmitted) messages and
        #: the wasted wire bytes, plus in-flight delay events.
        self.drops_total = 0
        self.dropped_bytes_total = 0
        self.delays_total = 0
        self._metrics = metrics
        self._m_children: dict = {}

    def account(self, op: str, nbytes: int, messages: int = 1) -> None:
        with self._lock:
            self.messages_total += messages
            self.bytes_total += nbytes
            self.messages_by_op[op] = self.messages_by_op.get(op, 0) + messages
            self.bytes_by_op[op] = self.bytes_by_op.get(op, 0) + nbytes
            if self._metrics is not None:
                pair = self._m_children.get(op)
                if pair is None:
                    pair = (
                        self._metrics.counter(
                            "simmpi_messages_total",
                            "Messages shipped over the simmpi wire, by operation.",
                            labels=("op",),
                        ).labels(op=op),
                        self._metrics.counter(
                            "simmpi_bytes_total",
                            "Serialized payload bytes shipped over the simmpi "
                            "wire, by operation.",
                            labels=("op",),
                        ).labels(op=op),
                    )
                    self._m_children[op] = pair
                pair[0].inc(messages)
                pair[1].inc(nbytes)

    def account_drop(self, op: str, nbytes: int) -> None:
        """One dropped-and-retransmitted message (fault injection)."""
        with self._lock:
            self.drops_total += 1
            self.dropped_bytes_total += nbytes
            if self._metrics is not None:
                self._metrics.counter(
                    "simmpi_messages_dropped_total",
                    "Messages dropped (and retransmitted) by fault injection.",
                    labels=("op",),
                ).labels(op=op).inc()

    def account_delay(self, op: str) -> None:
        """One delayed-in-flight message (fault injection)."""
        with self._lock:
            self.delays_total += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "simmpi_messages_delayed_total",
                    "Messages delayed in flight by fault injection.",
                    labels=("op",),
                ).labels(op=op).inc()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "messages_total": self.messages_total,
                "bytes_total": self.bytes_total,
                "messages_by_op": dict(self.messages_by_op),
                "bytes_by_op": dict(self.bytes_by_op),
                "drops_total": self.drops_total,
                "dropped_bytes_total": self.dropped_bytes_total,
                "delays_total": self.delays_total,
            }


class _Mailbox:
    """Per-destination buffer of in-flight messages with condition-variable
    wakeup."""

    def __init__(self) -> None:
        self._messages: List[Tuple[int, int, Any]] = []
        self._cond = threading.Condition()
        self._closed = False

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._cond:
            if self._closed:
                raise TransportError("mailbox closed (runtime shut down)")
            self._messages.append((source, tag, payload))
            self._cond.notify_all()

    def take(self, source: int, tag: int, timeout: Optional[float]) -> Tuple[int, int, Any]:
        """Blocking matched receive; FIFO among matching messages."""

        def _match() -> Optional[int]:
            for i, (src, t, _) in enumerate(self._messages):
                if (source == ANY_SOURCE or src == source) and (tag == ANY_TAG or t == tag):
                    return i
            return None

        with self._cond:
            idx = _match()
            while idx is None:
                if self._closed:
                    raise TransportError("mailbox closed while waiting for message")
                if not self._cond.wait(timeout=timeout):
                    raise TransportError(
                        f"recv timed out waiting for source={source} tag={tag}"
                    )
                idx = _match()
            return self._messages.pop(idx)

    def try_take(self, source: int, tag: int) -> Optional[Tuple[int, int, Any]]:
        """Non-blocking matched receive; None when nothing matches yet."""
        with self._cond:
            for i, (src, t, _) in enumerate(self._messages):
                if (source == ANY_SOURCE or src == source) and (
                    tag == ANY_TAG or t == tag
                ):
                    return self._messages.pop(i)
            return None

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class Request:
    """Handle for a non-blocking operation (cf. ``mpi4py.MPI.Request``).

    ``test()`` polls without blocking; ``wait()`` blocks until completion
    and returns the received payload (``None`` for sends).
    """

    def __init__(
        self,
        kind: str,
        mailbox: Optional["_Mailbox"] = None,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> None:
        self.kind = kind
        self._mailbox = mailbox
        self._source = source
        self._tag = tag
        self._timeout = timeout
        self._done = False
        self._payload: Any = None

    def _complete(self, payload: Any) -> None:
        self._done = True
        self._payload = payload

    @property
    def completed(self) -> bool:
        return self._done

    def test(self) -> Tuple[bool, Any]:
        """(done, payload-or-None) without blocking."""
        if self._done:
            return True, self._payload
        assert self._mailbox is not None
        hit = self._mailbox.try_take(self._source, self._tag)
        if hit is None:
            return False, None
        self._complete(hit[2])
        return True, self._payload

    def wait(self) -> Any:
        """Block until the operation completes; returns the payload."""
        if self._done:
            return self._payload
        assert self._mailbox is not None
        _, _, payload = self._mailbox.take(self._source, self._tag, self._timeout)
        self._complete(payload)
        return self._payload

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> List[Any]:
        """Wait on many requests; payloads in request order."""
        return [r.wait() for r in requests]


class _SharedState:
    """State shared by all rank views of one communicator."""

    def __init__(
        self, size: int, timeout: Optional[float], metrics=None, fault_plan=None
    ) -> None:
        self.size = size
        self.timeout = timeout
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.stats = CommStats(metrics=metrics)
        #: Deterministic fault plan (:mod:`repro.faults`); None = clean wire.
        self.fault_plan = fault_plan

    def close(self) -> None:
        for mb in self.mailboxes:
            mb.close()


class Communicator:
    """One rank's view of the communicator (cf. ``MPI.COMM_WORLD``)."""

    def __init__(self, state: _SharedState, rank: int) -> None:
        self._state = state
        self._rank = rank
        self._coll_seq = 0

    # ----------------------------------------------------------- environment
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._state.size

    def Get_rank(self) -> int:  # mpi4py spelling
        return self._rank

    def Get_size(self) -> int:  # mpi4py spelling
        return self._state.size

    @property
    def stats(self) -> CommStats:
        """Shared wire-traffic counters (bytes/messages per operation)."""
        return self._state.stats

    def _ship(self, obj: Any, dest: int, tag: int, op: str) -> None:
        """Serialize once, account the wire bytes to ``op``, deliver.

        With a fault plan installed, the message may be *dropped* in
        flight: the sender's reliable-delivery layer detects the loss and
        retransmits (each drop re-ships the bytes), so blocking semantics
        are preserved; a message dropped more than ``max_retries`` times
        raises :class:`TransportError` (a dead link).  Delay faults are
        counted on the stats (the threaded wire has no simulated clock to
        charge them to — see docs/robustness.md).
        """
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        plan = self._state.fault_plan
        if plan is not None:
            channel = f"{self._rank}->{dest}:{op}"
            drops = 0
            while plan.msg_dropped(channel):
                drops += 1
                self._state.stats.account_drop(op, len(blob))
                if drops > plan.config.max_retries:
                    raise TransportError(
                        f"message {self._rank}->{dest} ({op}) dropped "
                        f"{drops} times; link presumed dead"
                    )
            if plan.msg_delayed(channel):
                self._state.stats.account_delay(op)
        self._state.stats.account(op, len(blob))
        self._state.mailboxes[dest].put(self._rank, tag, pickle.loads(blob))

    # --------------------------------------------------------- point-to-point
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send (buffered: completes immediately after enqueue,
        like a small-message eager send)."""
        self._check_peer(dest)
        self._check_user_tag(tag)
        self._ship(obj, dest, tag, "p2p")

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Request":
        """Non-blocking send; returns a :class:`Request`.

        The eager-buffered transport copies the payload at call time, so
        the request is already complete — matching mpi4py's behaviour for
        small messages.
        """
        self.send(obj, dest, tag)
        req = Request(kind="send")
        req._complete(None)
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Request":
        """Non-blocking receive; ``Request.wait()`` yields the payload.

        The matching message is claimed lazily: the first ``test``/``wait``
        that finds it completes the request.
        """
        if source != ANY_SOURCE:
            self._check_peer(source)
        return Request(
            kind="recv",
            mailbox=self._state.mailboxes[self._rank],
            source=source,
            tag=tag,
            timeout=self._state.timeout,
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking matched receive; returns the payload."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        _, _, payload = self._state.mailboxes[self._rank].take(
            source, tag, self._state.timeout
        )
        return payload

    def recv_with_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Tuple[Any, int, int]:
        """Like :meth:`recv` but also returns ``(payload, source, tag)``."""
        src, t, payload = self._state.mailboxes[self._rank].take(
            source, tag, self._state.timeout
        )
        return payload, src, t

    # ------------------------------------------------------------ collectives
    def _next_coll_tag(self) -> int:
        tag = _COLL_TAG_BASE + self._coll_seq
        self._coll_seq += 1
        return tag

    def barrier(self) -> None:
        """Synchronize all ranks."""
        self._state.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        if self._rank == root:
            payload = _copy_message(obj)
            for dest in range(self.size):
                if dest != root:
                    self._ship(payload, dest, tag, "bcast")
            return payload
        _, _, payload = self._state.mailboxes[self._rank].take(root, tag, self._state.timeout)
        return payload

    def scatter(self, sendobjs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Distribute ``sendobjs[i]`` to rank ``i``; non-root passes None."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        if self._rank == root:
            if sendobjs is None or len(sendobjs) != self.size:
                raise TransportError(
                    f"scatter at root needs exactly {self.size} items"
                )
            for dest in range(self.size):
                if dest != root:
                    self._ship(sendobjs[dest], dest, tag, "scatter")
            return _copy_message(sendobjs[root])
        _, _, payload = self._state.mailboxes[self._rank].take(root, tag, self._state.timeout)
        return payload

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Collect one value per rank at ``root`` (rank order); others get
        None."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        if self._rank == root:
            results: List[Any] = [None] * self.size
            results[root] = _copy_message(obj)
            for _ in range(self.size - 1):
                src, _, payload = self._state.mailboxes[root].take(
                    ANY_SOURCE, tag, self._state.timeout
                )
                results[src] = payload
            return results
        self._ship(obj, root, tag, "gather")
        return None

    def allgather(self, obj: Any) -> List[Any]:
        """Gather to rank 0, then broadcast the full list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: ReduceOp = SUM, root: int = 0) -> Optional[Any]:
        """Fold ``op`` over all ranks' values (rank order) at ``root``."""
        gathered = self.gather(obj, root=root)
        if self._rank == root:
            assert gathered is not None
            return reduce_sequence(gathered, op)
        return None

    def allreduce(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Reduce then broadcast the result to everyone."""
        reduced = self.reduce(obj, op=op, root=0)
        return self.bcast(reduced, root=0)

    def alltoall(self, sendobjs: Sequence[Any]) -> List[Any]:
        """Rank ``i`` sends ``sendobjs[j]`` to rank ``j``; returns the list
        of values received, indexed by source rank."""
        if len(sendobjs) != self.size:
            raise TransportError(f"alltoall needs exactly {self.size} items")
        tag = self._next_coll_tag()
        for dest in range(self.size):
            if dest != self._rank:
                self._ship(sendobjs[dest], dest, tag, "alltoall")
        results: List[Any] = [None] * self.size
        results[self._rank] = _copy_message(sendobjs[self._rank])
        for _ in range(self.size - 1):
            src, _, payload = self._state.mailboxes[self._rank].take(
                ANY_SOURCE, tag, self._state.timeout
            )
            results[src] = payload
        return results

    # ---------------------------------------------------------------- checks
    def _check_peer(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise TransportError(f"rank {rank} out of range [0, {self.size})")

    def _check_user_tag(self, tag: int) -> None:
        if not (0 <= tag < _COLL_TAG_BASE):
            raise TransportError(f"user tag {tag} out of range [0, {_COLL_TAG_BASE})")


def CommWorld(
    size: int, timeout: Optional[float] = 60.0, metrics=None, fault_plan=None
) -> List[Communicator]:
    """Create ``size`` rank views sharing one communicator.

    Primarily used by the launcher; tests may use it directly to drive
    ranks from hand-managed threads.  ``metrics`` optionally feeds a
    :class:`~repro.obs.metrics.MetricsRegistry` with per-operation wire
    traffic (``simmpi_messages_total``/``simmpi_bytes_total``).
    ``fault_plan`` optionally injects deterministic message drops/delays
    (:mod:`repro.faults`).
    """
    if size < 1:
        raise TransportError("communicator size must be >= 1")
    state = _SharedState(size, timeout, metrics=metrics, fault_plan=fault_plan)
    return [Communicator(state, r) for r in range(size)]
