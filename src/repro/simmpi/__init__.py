"""Simulated SPMD/MPI runtime: threaded communicator, launcher, reduction
operators, and simulated-time phase helpers.

Drop-in shaped like mpi4py's pickle-based API (``comm.send`` / ``comm.recv``
/ ``comm.bcast`` / ...) so the PDC transport code reads like the real thing.
"""

from .communicator import ANY_SOURCE, ANY_TAG, CommStats, Communicator, CommWorld, Request
from .launcher import run_spmd
from .reduceops import CONCAT, LAND, LOR, MAX, MIN, PROD, SUM, reduce_sequence
from .timers import ClockGroup, phase_end

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommStats",
    "Communicator",
    "CommWorld",
    "Request",
    "run_spmd",
    "CONCAT",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "PROD",
    "SUM",
    "reduce_sequence",
    "ClockGroup",
    "phase_end",
]
