"""SPMD launcher: run one function on N simulated ranks.

The moral equivalent of ``mpiexec -n N python script.py`` for the threaded
communicator.  Each rank runs ``fn(comm, *args, **kwargs)`` in its own
thread; return values are collected in rank order.  If any rank raises, the
whole job is torn down and a :class:`~repro.errors.RuntimeAbort` carrying
the first failure is raised — mirroring ``MPI_Abort`` semantics.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional

from ..errors import RuntimeAbort
from .communicator import Communicator, CommWorld

__all__ = ["run_spmd"]


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: Optional[float] = 60.0,
    fault_plan: Any = None,
    **kwargs: Any,
) -> List[Any]:
    """Execute ``fn(comm, *args, **kwargs)`` on ``n_ranks`` ranks.

    Returns the per-rank return values in rank order.

    ``timeout`` bounds every blocking receive inside the job so a deadlocked
    test fails fast instead of hanging the suite.  ``fault_plan``
    optionally injects deterministic message drops/delays on the wire
    (:mod:`repro.faults`).
    """
    comms = CommWorld(n_ranks, timeout=timeout, fault_plan=fault_plan)
    results: List[Any] = [None] * n_ranks
    errors: List[Optional[BaseException]] = [None] * n_ranks
    abort = threading.Event()

    def _run(rank: int, comm: Communicator) -> None:
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported via RuntimeAbort
            errors[rank] = exc
            abort.set()
            # Unblock peers stuck in recv/barrier.
            comm._state.close()
            comm._state.barrier.abort()

    threads = [
        threading.Thread(target=_run, args=(r, comms[r]), name=f"simmpi-rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=None if timeout is None else timeout * 2)
        if t.is_alive():
            comms[0]._state.close()
            raise RuntimeAbort(f"rank thread {t.name} did not terminate")

    if abort.is_set():
        first = next(e for e in errors if e is not None)
        failed = [r for r, e in enumerate(errors) if e is not None]
        raise RuntimeAbort(f"rank(s) {failed} failed: {first!r}") from first
    return results
