"""Per-rank simulated timers and parallel-phase timing helpers.

Query elapsed time in the paper is end-to-end wall-clock of a parallel
phase.  In the simulator each rank/server owns a
:class:`~repro.storage.costmodel.SimClock`; a bulk-synchronous phase ends at
the *maximum* of the participating clocks, after which all clocks are
advanced to that instant (everyone waits at the implicit barrier).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..storage.costmodel import SimClock

__all__ = ["ClockGroup", "phase_end"]


def phase_end(clocks: Sequence[SimClock], category: str = "wait") -> float:
    """Close a bulk-synchronous phase: advance every clock to the max and
    return the phase-end time.

    ``category`` attributes the waited seconds on each clock's breakdown —
    pass ``"comm"`` when the rendezvous is a communication collective so
    traces and reports stop lumping collective time under ``wait``.
    """
    if not clocks:
        raise ValueError("phase_end needs at least one clock")
    t = max(c.now for c in clocks)
    for c in clocks:
        c.advance_to(t, category=category)
    return t


class ClockGroup:
    """A named collection of clocks (one per server + one for the client)."""

    def __init__(self, n_servers: int) -> None:
        self.servers: List[SimClock] = [SimClock(f"server{i}") for i in range(n_servers)]
        self.client = SimClock("client")

    def all(self) -> List[SimClock]:
        return [*self.servers, self.client]

    def sync_all(self) -> float:
        """Barrier across servers and client."""
        return phase_end(self.all())

    def sync_servers(self) -> float:
        """Barrier across servers only (client may run ahead — §III-C:
        the client *"can ... continue to other tasks when the servers are
        processing"*)."""
        return phase_end(self.servers)

    def sync_collective(self) -> float:
        """Rendezvous at the end of a communication collective: same
        barrier semantics as :meth:`sync_all`, but the waited seconds land
        in each clock's ``comm`` category instead of ``wait``."""
        return phase_end(self.all(), category="comm")

    def elapsed(self) -> float:
        """Latest simulated instant across the group."""
        return max(c.now for c in self.all())

    def reset(self) -> None:
        for c in self.all():
            c.reset()

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-clock charged-seconds breakdown — benchmark observability."""
        out = {c.name: c.breakdown() for c in self.all()}
        return out
