"""Observability: per-query distributed tracing and a process-wide
metrics registry.

Two complementary views of a running PDC deployment:

* :mod:`repro.obs.tracer` — hierarchical spans keyed to the *simulated*
  clocks, so a trace is a timeline of where simulated time goes inside a
  query (plan → broadcast → per-conjunct → per-server storage/index reads
  → result gather).  Exports Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto) and a JSONL structured-event log.
* :mod:`repro.obs.metrics` — labeled counters, gauges, and
  power-of-two-bucket histograms (the paper's Algorithm-1 binning,
  dogfooding :class:`~repro.histogram.mergeable.MergeableHistogram`).

Tracing is **zero-cost when disabled**: the default tracer is a
:data:`NOOP_TRACER` whose spans never touch the simulated clocks and whose
real overhead is a couple of attribute reads, so benchmark numbers are
unaffected unless a real :class:`Tracer` is installed with
:meth:`PDCSystem.set_tracer`.

The analysis layer builds on those two primitives:

* :mod:`repro.obs.analyze` — EXPLAIN ANALYZE: join the planner's
  per-step estimates with the executor's measured actuals;
* :mod:`repro.obs.profiler` — critical path, per-clock utilization,
  skew/straggler ranking, and flamegraph export over recorded traces;
* :mod:`repro.obs.regress` — the deterministic micro-suite behind
  ``python -m repro benchcheck`` and its ``BENCH_*.json`` baselines.
"""

from .analyze import (
    BatchAnalysis,
    QueryAnalysis,
    StepJoin,
    analyze,
    analyze_batch,
    render_analysis,
    render_batch_analysis,
)
from .export import (
    read_alerts_jsonl,
    render_openmetrics,
    replay_frames,
    write_alerts_jsonl,
    write_openmetrics,
)
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    HistogramMetric,
    MetricsError,
    MetricsRegistry,
    escape_label_value,
    format_labels,
    get_registry,
)
from .monitor import (
    NOOP_MONITOR,
    MonitorRun,
    NoopMonitor,
    ServiceMonitor,
    demo_monitor_run,
    demo_slos,
)
from .slo import SLI_NAMES, SLO, Alert, SLOMonitor, SLOState
from .timeseries import (
    Sample,
    TimeSeries,
    TimeSeriesRecorder,
    WindowStats,
)
from .profiler import (
    ProfileReport,
    TrackStats,
    busy_union,
    profile,
    render_profile,
    to_collapsed,
    to_speedscope,
    write_collapsed,
    write_speedscope,
)
from .tracer import NOOP_TRACER, NoopTracer, Span, Tracer
from .walltime import (
    BUCKET_NAMES,
    DispatchTrace,
    PoolTraceReport,
    TaskTrace,
    WallProfiler,
    build_report,
    efficiency_table,
    render_efficiency,
    render_report,
    report_to_dict,
    report_tracer,
)

__all__ = [
    "BatchAnalysis",
    "QueryAnalysis",
    "StepJoin",
    "analyze",
    "analyze_batch",
    "render_analysis",
    "render_batch_analysis",
    "ProfileReport",
    "TrackStats",
    "profile",
    "render_profile",
    "to_collapsed",
    "to_speedscope",
    "write_collapsed",
    "write_speedscope",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsError",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "Tracer",
    "escape_label_value",
    "format_labels",
    "Sample",
    "TimeSeries",
    "TimeSeriesRecorder",
    "WindowStats",
    "SLI_NAMES",
    "SLO",
    "Alert",
    "SLOMonitor",
    "SLOState",
    "NOOP_MONITOR",
    "NoopMonitor",
    "ServiceMonitor",
    "MonitorRun",
    "demo_monitor_run",
    "demo_slos",
    "render_openmetrics",
    "write_openmetrics",
    "read_alerts_jsonl",
    "write_alerts_jsonl",
    "replay_frames",
    "busy_union",
    "BUCKET_NAMES",
    "DispatchTrace",
    "PoolTraceReport",
    "TaskTrace",
    "WallProfiler",
    "build_report",
    "efficiency_table",
    "render_efficiency",
    "render_report",
    "report_to_dict",
    "report_tracer",
]
