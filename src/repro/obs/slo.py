"""Declarative SLOs with multi-window error-budget burn-rate alerts.

An :class:`SLO` names a per-tenant service-level objective over one SLI
— queue wait, shed rate, error rate, or timeout rate — as a target
fraction of *good* requests (``objective``, e.g. ``0.99``).  The
complement ``1 - objective`` is the **error budget**; the **burn rate**
over a window is

    burn = (bad fraction inside the window) / (1 - objective)

so a burn rate of 1.0 spends the budget exactly at the sustainable pace
and 5.0 exhausts it five times too fast.  Following the multi-window
pattern of SRE practice, every SLO is evaluated on two windows at once:

* a **fast** window (short, high threshold — default 5×) that catches
  sharp overload quickly, and
* a **slow** window (long, threshold 1×) that catches sustained slow
  leaks a short window averages away.

All windows are *simulated* seconds.  The monitor is event-driven:
terminal request outcomes arrive through :meth:`SLOMonitor.observe`
with their simulated timestamps, each observation (and each explicit
:meth:`~SLOMonitor.evaluate` tick) re-evaluates burn rates, and state
transitions append to a deterministic, replayable :class:`Alert` stream:
identical inputs produce a byte-identical stream
(:meth:`~SLOMonitor.fingerprint`), which is what lets a future
autoscaler treat alerts as a reliable control signal rather than a
flaky notification.  Controllers subscribe with
:meth:`~SLOMonitor.subscribe`; callbacks fire synchronously in stream
order.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..errors import PDCError

__all__ = ["SLI_NAMES", "SLO", "Alert", "SLOState", "SLOMonitor"]

#: Service-level indicators an SLO can target.  Each classifies a
#: terminal request outcome as good or bad:
#:
#: * ``queue_wait`` — bad when the request waited longer than
#:   ``threshold_s`` in the queue (shed requests count bad: they waited
#:   past their deadline by definition);
#: * ``shed``      — bad when the admitted request was shed;
#: * ``error``     — bad when the dispatched request failed;
#: * ``timeout``   — bad when the completed request hit its simulated
#:   execution deadline;
#: * ``ingest_lag`` — judges ``ingest_epoch`` observations only: bad
#:   when the epoch's apply lag exceeded ``threshold_s``;
#: * ``migration`` — judges cluster ``migration`` observations only: bad
#:   when the migration's simulated duration exceeded ``threshold_s``.
SLI_NAMES = ("queue_wait", "shed", "error", "timeout", "ingest_lag", "migration")


@dataclass(frozen=True)
class SLO:
    """One tenant's objective over one SLI (see :data:`SLI_NAMES`)."""

    name: str
    #: Tenant the SLO applies to ("*" matches every tenant).
    tenant: str
    sli: str
    #: Target good fraction, e.g. 0.99; the error budget is ``1 - objective``.
    objective: float
    #: ``queue_wait`` only: waits above this many simulated seconds are bad.
    threshold_s: Optional[float] = None
    #: Fast / slow evaluation windows, simulated seconds.
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    #: Burn-rate thresholds per window (fire at or above).
    fast_burn: float = 5.0
    slow_burn: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise PDCError("SLO needs a non-empty name")
        if self.sli not in SLI_NAMES:
            raise PDCError(f"unknown SLI {self.sli!r}; valid: {SLI_NAMES}")
        if not (0.0 < self.objective < 1.0):
            raise PDCError(
                f"SLO {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}"
            )
        if self.sli in ("queue_wait", "ingest_lag", "migration") and (
            self.threshold_s is None or self.threshold_s < 0.0
        ):
            raise PDCError(
                f"SLO {self.name!r}: {self.sli} needs a non-negative "
                "threshold_s"
            )
        if self.fast_window_s <= 0.0 or self.slow_window_s <= 0.0:
            raise PDCError(f"SLO {self.name!r}: windows must be positive")
        if self.fast_window_s > self.slow_window_s:
            raise PDCError(
                f"SLO {self.name!r}: fast window must not exceed the slow one"
            )
        if self.fast_burn <= 0.0 or self.slow_burn <= 0.0:
            raise PDCError(f"SLO {self.name!r}: burn thresholds must be positive")

    @property
    def budget(self) -> float:
        """The error budget: allowed bad fraction."""
        return 1.0 - self.objective

    def classify(
        self,
        outcome: str,
        queue_wait_s: Optional[float],
        timed_out: bool,
    ) -> Optional[bool]:
        """Whether one terminal outcome is bad under this SLI.

        ``outcome`` is a ticket's terminal status (``done`` / ``failed``
        / ``shed``; rejected requests were never admitted and count for
        no SLI).  Returns None when the outcome is outside this SLI's
        population (e.g. a shed request for the ``error`` SLI, which
        only judges dispatched work).
        """
        if outcome == "rejected":
            return None
        if self.sli == "ingest_lag":
            # Judges ingest epochs only; queue_wait_s carries the lag.
            if outcome != "ingest_epoch" or queue_wait_s is None:
                return None
            return queue_wait_s > self.threshold_s
        if self.sli == "migration":
            # Judges migrations only; queue_wait_s carries the duration.
            if outcome != "migration" or queue_wait_s is None:
                return None
            return queue_wait_s > self.threshold_s
        if outcome in ("ingest_epoch", "migration"):
            # Ingest epochs and migrations are outside every
            # request-oriented SLI.
            return None
        if self.sli == "queue_wait":
            if outcome == "shed":
                return True
            if queue_wait_s is None:
                return None
            return queue_wait_s > self.threshold_s
        if self.sli == "shed":
            return outcome == "shed"
        if self.sli == "error":
            if outcome == "shed":
                return None
            return outcome == "failed"
        # timeout
        if outcome != "done":
            return None
        return timed_out


@dataclass(frozen=True)
class Alert:
    """One transition in an SLO's burn-rate state, at a simulated instant."""

    t_s: float
    slo: str
    tenant: str
    #: Which window crossed: "fast" or "slow".
    window: str
    #: "fire" (burn reached the threshold) or "clear" (dropped below).
    kind: str
    #: Burn rate at the transition.
    burn_rate: float
    #: Fraction of the whole run's error budget consumed so far
    #: (cumulative bad / cumulative total / budget).
    budget_used: float

    def to_record(self) -> Dict[str, object]:
        """Canonical JSON-able form — the fingerprint's unit."""
        return {
            "t_s": self.t_s,
            "slo": self.slo,
            "tenant": self.tenant,
            "window": self.window,
            "kind": self.kind,
            "burn_rate": self.burn_rate,
            "budget_used": self.budget_used,
        }


@dataclass
class SLOState:
    """Live evaluation state of one SLO."""

    slo: SLO
    #: (t, bad) terminal events, time-ordered, bounded by the slow window
    #: (older events can never influence an evaluation again).
    events: Deque[Tuple[float, bool]] = field(default_factory=deque)
    total: int = 0
    bad: int = 0
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    firing_fast: bool = False
    firing_slow: bool = False

    @property
    def budget_used(self) -> float:
        """Cumulative error-budget consumption over the whole run."""
        if self.total == 0:
            return 0.0
        return (self.bad / self.total) / self.slo.budget

    def _burn_over(self, t_s: float, width_s: float) -> float:
        t_start = t_s - width_s
        n = bad = 0
        for t, is_bad in self.events:
            if t_start < t <= t_s:
                n += 1
                bad += is_bad
        if n == 0:
            return 0.0
        return (bad / n) / self.slo.budget

    def evaluate(self, t_s: float) -> List[Alert]:
        """Recompute both windows at ``t_s``; return fired transitions."""
        self.burn_fast = self._burn_over(t_s, self.slo.fast_window_s)
        self.burn_slow = self._burn_over(t_s, self.slo.slow_window_s)
        out: List[Alert] = []
        for window, burn, threshold, firing_attr in (
            ("fast", self.burn_fast, self.slo.fast_burn, "firing_fast"),
            ("slow", self.burn_slow, self.slo.slow_burn, "firing_slow"),
        ):
            firing = getattr(self, firing_attr)
            now_firing = burn >= threshold
            if now_firing != firing:
                setattr(self, firing_attr, now_firing)
                out.append(
                    Alert(
                        t_s=t_s,
                        slo=self.slo.name,
                        tenant=self.slo.tenant,
                        window=window,
                        kind="fire" if now_firing else "clear",
                        burn_rate=burn,
                        budget_used=self.budget_used,
                    )
                )
        return out


class SLOMonitor:
    """Evaluates a set of SLOs over a terminal-outcome event stream.

    Deterministic and replayable: the alert stream is a pure function of
    the observation sequence (timestamps, tenants, outcomes), which on
    simulated clocks is itself a pure function of seed + config.
    """

    def __init__(self, slos: Tuple[SLO, ...] = ()) -> None:
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise PDCError(f"duplicate SLO names: {sorted(names)}")
        self.states: List[SLOState] = [SLOState(slo=s) for s in slos]
        self.alerts: List[Alert] = []
        self._subscribers: List[Callable[[Alert], None]] = []

    @property
    def slos(self) -> Tuple[SLO, ...]:
        return tuple(st.slo for st in self.states)

    def state(self, name: str) -> SLOState:
        for st in self.states:
            if st.slo.name == name:
                return st
        raise PDCError(
            f"unknown SLO {name!r}; configured: "
            f"{sorted(st.slo.name for st in self.states)}"
        )

    # ------------------------------------------------------------- callbacks
    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        """Receive every subsequent alert, synchronously, in stream order
        (the hook a controller/autoscaler attaches to)."""
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Alert], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # ------------------------------------------------------------ event feed
    def observe(
        self,
        t_s: float,
        tenant: str,
        outcome: str,
        queue_wait_s: Optional[float] = None,
        timed_out: bool = False,
    ) -> List[Alert]:
        """Feed one terminal request outcome and re-evaluate matching SLOs.

        Returns (and records, and dispatches to subscribers) any alert
        transitions this observation caused.
        """
        fired: List[Alert] = []
        for st in self.states:
            slo = st.slo
            if slo.tenant != "*" and slo.tenant != tenant:
                continue
            bad = slo.classify(outcome, queue_wait_s, timed_out)
            if bad is None:
                continue
            st.events.append((t_s, bad))
            st.total += 1
            st.bad += bad
            # Events older than the slow window can never matter again.
            horizon = t_s - slo.slow_window_s
            while st.events and st.events[0][0] <= horizon:
                st.events.popleft()
            fired.extend(st.evaluate(t_s))
        self._emit(fired)
        return fired

    def evaluate(self, t_s: float) -> List[Alert]:
        """Re-evaluate every SLO at ``t_s`` without a new event — how
        alerts clear when traffic stops entirely."""
        fired: List[Alert] = []
        for st in self.states:
            fired.extend(st.evaluate(t_s))
        self._emit(fired)
        return fired

    def _emit(self, fired: List[Alert]) -> None:
        self.alerts.extend(fired)
        for alert in fired:
            for callback in list(self._subscribers):
                callback(alert)

    # ------------------------------------------------------------ inspection
    def firing(self) -> List[Tuple[str, str]]:
        """Currently-firing ``(slo_name, window)`` pairs, sorted."""
        out = []
        for st in self.states:
            if st.firing_fast:
                out.append((st.slo.name, "fast"))
            if st.firing_slow:
                out.append((st.slo.name, "slow"))
        return sorted(out)

    def to_records(self) -> List[Dict[str, object]]:
        return [a.to_record() for a in self.alerts]

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON alert stream.  Two runs with
        identical seeds/configs must produce identical fingerprints —
        pinned by tests/obs/test_monitor.py."""
        payload = "\n".join(
            json.dumps(rec, sort_keys=True) for rec in self.to_records()
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
