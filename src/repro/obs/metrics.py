"""Process-wide metrics: labeled counters, gauges, and power-of-two-bucket
histograms.

The design follows the Prometheus client model — named metric *families*
with a fixed label schema, ``labels(...)`` resolving one labeled child —
but stays dependency-free.  The histogram metric dogfoods the paper's
Algorithm-1 binning (:class:`~repro.histogram.mergeable.MergeableHistogram`):
observations land on an aligned power-of-two-width grid, so histograms of
the same metric from different processes/servers merge exactly, the same
property the paper exploits for per-region histograms.

A module-level default registry (:data:`REGISTRY`) is what the library
instruments against; tests and benchmarks that need isolation construct
their own :class:`MetricsRegistry` and hand it to ``PDCSystem``.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "MetricsError",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "escape_label_value",
    "format_labels",
]

#: Observations buffered before folding into the mergeable histogram.
_HIST_FLUSH_THRESHOLD = 1024


class MetricsError(ValueError):
    """Bad metric declaration or use (type/label mismatch, cardinality)."""


def escape_label_value(value: str) -> str:
    """OpenMetrics label-value escaping: backslash, double quote, and
    newline must be escaped inside the quoted value (exposition-format
    spec).  Order matters — backslash first, or the other escapes would
    be double-escaped."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: Dict[str, str]) -> str:
    """Deterministic ``{k="v",...}`` rendering: labels sorted by name,
    values escaped.  Empty string for an empty label set."""
    if not labels:
        return ""
    rendered = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + rendered + "}"


class _Metric:
    """Common family/child mechanics for all metric kinds.

    A metric with ``label_names`` is a *family*: values live on labeled
    children resolved with :meth:`labels`.  A metric without label names
    is its own single child.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 label_names: Tuple[str, ...] = (),
                 max_series: int = 1000) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.max_series = max_series
        self._children: Dict[Tuple[str, ...], "_Metric"] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: object) -> "_Metric":
        """The child for one label assignment (created on first use)."""
        if not self.label_names:
            raise MetricsError(f"metric {self.name!r} takes no labels")
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"metric {self.name!r} needs labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if len(self._children) >= self.max_series:
                        raise MetricsError(
                            f"metric {self.name!r} exceeds "
                            f"{self.max_series} label sets (cardinality guard)"
                        )
                    child = type(self)(self.name, self.help)
                    self._children[key] = child
        return child

    def _series(self) -> Iterator[Tuple[Dict[str, str], "_Metric"]]:
        """(labels dict, child) pairs — the family itself when unlabeled."""
        if self.label_names:
            for key, child in sorted(self._children.items()):
                yield dict(zip(self.label_names, key)), child
        else:
            yield {}, self

    def _check_unlabeled(self) -> None:
        if self.label_names:
            raise MetricsError(
                f"metric {self.name!r} is labeled {self.label_names}; "
                "call .labels(...) first"
            )


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._check_unlabeled()
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        self._check_unlabeled()
        return self._value

    def total(self) -> float:
        """Sum over every labeled series (the family's value when
        unlabeled)."""
        return sum(child._value for _, child in self._series())


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._check_unlabeled()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_unlabeled()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        self._check_unlabeled()
        return self._value


class HistogramMetric(_Metric):
    """Distribution metric on the paper's mergeable power-of-two grid.

    Observations are buffered and folded into one
    :class:`~repro.histogram.mergeable.MergeableHistogram` whose bin width
    is an exact power of two and whose boundaries sit on the aligned grid
    — so two instances of the same metric merge exactly
    (``a.histogram.merge(b.histogram)``), the Algorithm-1 property.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Tuple[str, ...] = (),
                 max_series: int = 1000, n_bins: int = 32) -> None:
        super().__init__(name, help, label_names, max_series)
        self.n_bins = n_bins
        self._count = 0
        self._sum = 0.0
        self._pending: List[float] = []
        self._hist = None  # lazily a MergeableHistogram

    def labels(self, **labels: object) -> "HistogramMetric":
        child = super().labels(**labels)
        child.n_bins = self.n_bins  # families propagate their binning
        return child  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        self._check_unlabeled()
        self._count += 1
        self._sum += value
        self._pending.append(float(value))
        if len(self._pending) >= _HIST_FLUSH_THRESHOLD:
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        from ..histogram.mergeable import MergeableHistogram

        batch = MergeableHistogram.from_data(
            np.asarray(self._pending, dtype=np.float64),
            n_bins=self.n_bins,
            sample_fraction=1.0,
        )
        self._hist = batch if self._hist is None else self._hist.merge(batch)
        self._pending.clear()

    @property
    def count(self) -> int:
        self._check_unlabeled()
        return self._count

    @property
    def sum(self) -> float:
        self._check_unlabeled()
        return self._sum

    @property
    def histogram(self):
        """The folded :class:`MergeableHistogram` (None before any
        observation).

        Pending observations are folded into a *view* without being
        committed: reading the histogram — including via ``collect()``
        / ``render()`` / a monitor scrape — never advances the fold
        state, so the bucket grid a later read sees is independent of
        how often the registry was observed in between.
        """
        self._check_unlabeled()
        if not self._pending:
            return self._hist
        from ..histogram.mergeable import MergeableHistogram

        batch = MergeableHistogram.from_data(
            np.asarray(self._pending, dtype=np.float64),
            n_bins=self.n_bins,
            sample_fraction=1.0,
        )
        return batch if self._hist is None else self._hist.merge(batch)

    def buckets(self) -> List[Tuple[float, float, int]]:
        """Non-empty ``(lo, hi, count)`` buckets on the aligned grid."""
        h = self.histogram
        if h is None:
            return []
        return [
            (*h.bin_range(i), int(c))
            for i, c in enumerate(h.counts)
            if c
        ]


class MetricsRegistry:
    """A namespace of metrics with declare-or-fetch semantics.

    ``counter``/``gauge``/``histogram`` return the existing metric when the
    name is already registered (validating that kind and label schema
    match), so instrumentation sites need no global coordination.
    """

    def __init__(self, max_series_per_metric: int = 1000) -> None:
        self.max_series_per_metric = max_series_per_metric
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- declare
    def _declare(self, cls, name: str, help: str,
                 labels: Iterable[str], **kwargs) -> _Metric:
        labels = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.label_names != labels:
                    raise MetricsError(
                        f"metric {name!r} registered with labels "
                        f"{existing.label_names}, not {labels}"
                    )
                return existing
            metric = cls(name, help, labels,
                         max_series=self.max_series_per_metric, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (), n_bins: int = 32) -> HistogramMetric:
        return self._declare(HistogramMetric, name, help, labels, n_bins=n_bins)  # type: ignore[return-value]

    # ------------------------------------------------------------- inspect
    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def total(self, name: str) -> float:
        """Sum of a counter family over all label sets (0.0 when absent)."""
        metric = self._metrics.get(name)
        if metric is None or not isinstance(metric, Counter):
            return 0.0
        return metric.total()

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def collect(self) -> Iterator[Tuple[str, str, Dict[str, str], float]]:
        """Flat samples: ``(name, kind, labels, value)``.  Histograms emit
        ``_count``/``_sum`` plus one ``_bucket`` sample per non-empty bin
        (with ``le`` = bucket upper edge)."""
        for name in self.names():
            metric = self._metrics[name]
            for labels, child in metric._series():
                if isinstance(child, HistogramMetric):
                    yield f"{name}_count", metric.kind, labels, float(child.count)
                    yield f"{name}_sum", metric.kind, labels, child.sum
                    for lo, hi, c in child.buckets():
                        yield (
                            f"{name}_bucket", metric.kind,
                            {**labels, "le": f"{hi:g}"}, float(c),
                        )
                else:
                    yield name, metric.kind, labels, child._value

    def render(self) -> str:
        """Prometheus-style text exposition."""
        lines: List[str] = []
        seen: set = set()
        for name, kind, labels, value in self.collect():
            family = name.rsplit("_", 1)[0] if name.endswith(
                ("_count", "_sum", "_bucket")
            ) else name
            if family not in seen:
                seen.add(family)
                metric = self._metrics.get(family)
                if metric is not None:
                    if metric.help:
                        lines.append(f"# HELP {family} {metric.help}")
                    lines.append(f"# TYPE {family} {metric.kind}")
            lines.append(f"{name}{format_labels(labels)} {value:g}")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


#: The process-wide default registry the library instruments against.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
