"""Exposition for the continuous-telemetry pipeline.

Three consumers, three formats:

* **OpenMetrics text** (:func:`render_openmetrics`) — the cumulative
  engine registry plus *windowed* series aggregates (rate, p50/p95/p99,
  …) and live SLO burn-rate/budget gauges, rendered with proper label
  escaping and terminated by ``# EOF`` per the exposition-format spec.
  Windowed samples use recording-rule-style names
  (``<series>:window_rate``), the Prometheus idiom for derived series.
* **JSONL** — the recorder's ring buffers
  (:meth:`~repro.obs.timeseries.TimeSeriesRecorder.write_jsonl`) and the
  alert stream (:func:`write_alerts_jsonl`), both byte-deterministic, so
  offline analysis and replay need no live system.
* **Replay frames** (:func:`replay_frames`) — ``pdc monitor --watch``:
  step a *recorded* run forward in fixed simulated-time frames, showing
  per-tenant windowed stats and the alerts active in each frame,
  reconstructed purely from the two JSONL artifacts.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterator, List, Optional

from .metrics import format_labels
from .slo import Alert
from .timeseries import TimeSeriesRecorder

__all__ = [
    "render_openmetrics",
    "write_openmetrics",
    "write_alerts_jsonl",
    "read_alerts_jsonl",
    "replay_frames",
]

#: Windowed aggregates exposed per series kind (recording-rule suffixes).
_WINDOW_FIELDS = {
    "event": ("rate", "sum", "max", "p50", "p95", "p99"),
    "counter": ("rate", "increase"),
    "gauge": ("last", "min", "max", "mean"),
}


def _sample_line(name: str, labels: Dict[str, str], value: float) -> str:
    return f"{name}{format_labels(labels)} {value:g}"


def render_openmetrics(
    registry=None,
    recorder: Optional[TimeSeriesRecorder] = None,
    slo_monitor=None,
    t_end: Optional[float] = None,
    window_s: float = 0.05,
    wall_registry=None,
) -> str:
    """One OpenMetrics exposition of everything we know.

    Any of the sources may be None; the output always ends with
    ``# EOF``.  All derived values are computed from recorded samples at
    simulated instant ``t_end`` (default: the recorder's latest sample).

    ``wall_registry`` is the parallel runtime's own wall-side counter
    registry (``ParallelRuntime.wall_metrics``: the ``pdc_parallel_*``
    families).  It renders after the engine registry — kept as a separate
    argument because those counters live outside the fingerprint-pinned
    system registry by design.
    """
    if window_s <= 0.0:
        raise ValueError("window_s must be positive")
    lines: List[str] = []

    if registry is not None:
        lines.append(registry.render())

    if wall_registry is not None:
        lines.append(wall_registry.render())

    if recorder is not None:
        t = recorder.t_latest if t_end is None else t_end
        seen_types: set = set()
        for series in recorder.all_series():
            ws = series.window(t, window_s)
            for fieldname in _WINDOW_FIELDS[series.kind]:
                value = getattr(ws, fieldname)
                if isinstance(value, float) and math.isnan(value):
                    continue
                name = f"{series.name}:window_{fieldname}"
                if name not in seen_types:
                    seen_types.add(name)
                    lines.append(f"# TYPE {name} gauge")
                lines.append(_sample_line(name, series.labels, value))

    if slo_monitor is not None:
        lines.append("# TYPE pdc_slo_burn_rate gauge")
        lines.append("# TYPE pdc_slo_firing gauge")
        lines.append("# TYPE pdc_slo_budget_used gauge")
        for st in slo_monitor.states:
            base = {"slo": st.slo.name, "tenant": st.slo.tenant}
            for window, burn, firing in (
                ("fast", st.burn_fast, st.firing_fast),
                ("slow", st.burn_slow, st.firing_slow),
            ):
                labels = {**base, "window": window}
                lines.append(_sample_line("pdc_slo_burn_rate", labels, burn))
                lines.append(
                    _sample_line("pdc_slo_firing", labels, float(firing))
                )
            lines.append(
                _sample_line("pdc_slo_budget_used", base, st.budget_used)
            )

    lines.append("# EOF")
    return "\n".join(lines)


def write_openmetrics(path: str, **kwargs) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(render_openmetrics(**kwargs) + "\n")


# ------------------------------------------------------------- alert JSONL
def write_alerts_jsonl(alerts: List[Alert], path: str) -> None:
    """The alert stream, one canonical JSON record per line — the
    byte-deterministic artifact the fingerprint hashes."""
    with open(path, "w", encoding="utf-8") as f:
        for alert in alerts:
            f.write(json.dumps(alert.to_record(), sort_keys=True) + "\n")


def read_alerts_jsonl(path: str) -> List[Alert]:
    alerts: List[Alert] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            if not line.strip():
                continue
            rec = json.loads(line)
            alerts.append(Alert(**rec))
    return alerts


# ----------------------------------------------------------------- replay
def replay_frames(
    recorder: TimeSeriesRecorder,
    alerts: List[Alert],
    step_s: float,
    window_s: Optional[float] = None,
    t_start: float = 0.0,
) -> Iterator[str]:
    """``--watch`` replay: render one status frame per ``step_s`` of
    simulated time, from recorded artifacts alone.

    Each frame shows the per-tenant windowed view at the frame's end
    instant plus every alert transition inside the frame and the set of
    alerts still active — all reconstructed from the series JSONL and
    alert JSONL, no live system required.
    """
    if step_s <= 0.0:
        raise ValueError("step_s must be positive")
    w = step_s if window_s is None else window_s
    t_last = max(
        recorder.t_latest, max((a.t_s for a in alerts), default=0.0)
    )
    tenants = sorted(
        {
            s.labels["tenant"]
            for s in recorder.all_series()
            if "tenant" in s.labels
        }
    )
    active: Dict[tuple, Alert] = {}
    idx = 0
    n_frames = max(1, math.ceil((t_last - t_start) / step_s))
    for i in range(n_frames):
        t = t_start + (i + 1) * step_s
        frame: List[str] = [
            f"--- frame {i + 1}/{n_frames} @ t={t * 1e3:9.3f} ms "
            f"(window {w * 1e3:.1f} ms) ---"
        ]
        frame.append(
            f"{'tenant':<10} {'req/s':>8} {'done/s':>8} {'shed/s':>8} "
            f"{'rej/s':>8} {'p99 wait ms':>12}"
        )
        for tenant in tenants:
            subs = recorder.window(
                "pdc_service_outcomes", t, w, tenant=tenant,
                outcome="submitted",
            )
            done = recorder.window(
                "pdc_service_outcomes", t, w, tenant=tenant, outcome="done"
            )
            shed = recorder.window(
                "pdc_service_outcomes", t, w, tenant=tenant, outcome="shed"
            )
            rej = recorder.window(
                "pdc_service_outcomes", t, w, tenant=tenant,
                outcome="rejected",
            )
            qw = recorder.window(
                "pdc_service_queue_wait_sim_seconds", t, w, tenant=tenant
            )
            p99 = "-" if math.isnan(qw.p99) else f"{qw.p99 * 1e3:.3f}"
            frame.append(
                f"{tenant:<10} {subs.rate:>8.0f} {done.rate:>8.0f} "
                f"{shed.rate:>8.0f} {rej.rate:>8.0f} {p99:>12}"
            )
        while idx < len(alerts) and alerts[idx].t_s <= t:
            a = alerts[idx]
            key = (a.slo, a.window)
            if a.kind == "fire":
                active[key] = a
            else:
                active.pop(key, None)
            frame.append(
                f"  ALERT {a.kind.upper():<5} {a.slo} [{a.window}] "
                f"burn={a.burn_rate:.2f} budget_used={a.budget_used * 100:.1f}% "
                f"@ t={a.t_s * 1e3:.3f} ms"
            )
            idx += 1
        if active:
            names = ", ".join(
                f"{slo}[{window}]" for slo, window in sorted(active)
            )
            frame.append(f"  firing: {names}")
        else:
            frame.append("  firing: none")
        yield "\n".join(frame)
