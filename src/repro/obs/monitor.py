"""Continuous telemetry for a PDC deployment: the service monitor.

:class:`ServiceMonitor` ties the two telemetry primitives together and
hangs them off the event points of a running deployment:

* every :class:`~repro.service.frontend.QueryService` admission /
  shed / dispatch / completion, every
  :class:`~repro.query.scheduler.QueryScheduler` batch window, and every
  :class:`~repro.pdc.server.PDCServer` region read lands as a sample in
  a :class:`~repro.obs.timeseries.TimeSeriesRecorder` (ring-buffered,
  windowed aggregates on simulated time);
* terminal request outcomes additionally feed an
  :class:`~repro.obs.slo.SLOMonitor`, whose multi-window burn-rate
  evaluation emits the deterministic :class:`~repro.obs.slo.Alert`
  stream controllers subscribe to.

Install with :meth:`PDCSystem.set_monitor`; the default on every system
is :data:`NOOP_MONITOR`, which — like the no-op tracer — records
nothing, charges nothing, and costs one attribute read per site, so a
deployment without a monitor is bit-identical to one built before this
module existed.  An installed monitor only ever *reads* simulated
clocks (each hook receives the instant explicitly), so even enabled
monitoring never changes results, clocks, or engine metrics; tests pin
both properties.

:func:`demo_monitor_run` is the shared deterministic overload scenario
(seeded Poisson arrivals overrunning a rate-limited tenant, then
receding) used by the ``python -m repro monitor`` CLI, the selftest
monitor leg, the bench-regression micro-suite, and the alert-determinism
tests — one scenario, one set of pinned numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .slo import SLO, Alert, SLOMonitor, SLOState
from .timeseries import TimeSeriesRecorder, WindowStats

__all__ = [
    "NoopMonitor",
    "NOOP_MONITOR",
    "ServiceMonitor",
    "MonitorRun",
    "demo_slos",
    "demo_monitor_run",
]


class NoopMonitor:
    """Disabled monitor: every hook is a no-op.

    ``enabled`` is False so instrumentation sites skip building hook
    arguments entirely; safe to share across systems (stateless).
    """

    enabled = False

    def on_submit(self, t_s: float, tenant: str) -> None:
        return None

    def on_reject(self, t_s: float, tenant: str, reason: str) -> None:
        return None

    def on_admit(self, t_s: float, tenant: str, depth: int) -> None:
        return None

    def on_shed(self, t_s: float, tenant: str, waited_s: float) -> None:
        return None

    def on_dispatch(
        self, t_s: float, tenant: str, queue_wait_s: float, depth: int
    ) -> None:
        return None

    def on_complete(
        self,
        t_s: float,
        tenant: str,
        status: str,
        queue_wait_s: float,
        service_s: float,
        degraded: bool = False,
        timed_out: bool = False,
    ) -> None:
        return None

    def on_window(
        self,
        t_s: float,
        width: int,
        elapsed_s: float,
        shared_reads: int,
        saved_bytes: float,
    ) -> None:
        return None

    def on_region_read(
        self, t_s: float, server_id: int, nbytes: float, category: str,
        result: str = "read",
    ) -> None:
        return None

    def on_ingest_epoch(
        self,
        t_s: float,
        tenant: str,
        epoch: int,
        n_ops: int,
        n_elements: int,
        lag_s: float,
        hist_merges: int = 0,
        hist_rebuilds: int = 0,
        compactions: int = 0,
    ) -> None:
        return None

    def on_compaction(
        self, t_s: float, object_name: str, region_id: int, delta_elements: int
    ) -> None:
        return None

    def on_membership(
        self,
        t_s: float,
        server_id: int,
        kind: str,
        state: str,
        generation: int,
        n_serving: int,
    ) -> None:
        return None

    def on_migration(
        self,
        t_s: float,
        n_moves: int,
        moved_vbytes: float,
        duration_s: float,
        status: str,
    ) -> None:
        return None

    def on_scale_decision(
        self, t_s: float, action: str, amount: int, n_servers: int, reason: str
    ) -> None:
        return None

    def on_parallel(self, t_s: float, wall_registry) -> None:
        return None

    def on_tick(self, t_s: float) -> None:
        return None


#: The process-wide disabled monitor (the default on every PDCSystem).
NOOP_MONITOR = NoopMonitor()


class ServiceMonitor:
    """Recording monitor: time-series samples + SLO burn-rate alerts.

    ``registry`` (optional) is scraped into counter series every
    ``scrape_interval_s`` simulated seconds, driven by the event stream
    itself — no wall clock, no timers, fully deterministic.
    """

    enabled = True

    def __init__(
        self,
        slos: Tuple[SLO, ...] = (),
        recorder: Optional[TimeSeriesRecorder] = None,
        registry=None,
        scrape_interval_s: Optional[float] = None,
        window_s: float = 0.05,
    ) -> None:
        if scrape_interval_s is not None and scrape_interval_s <= 0.0:
            raise ValueError("scrape_interval_s must be positive (or None)")
        if window_s <= 0.0:
            raise ValueError("window_s must be positive")
        self.recorder = recorder if recorder is not None else TimeSeriesRecorder()
        self.slo = SLOMonitor(tuple(slos))
        self.registry = registry
        self.scrape_interval_s = scrape_interval_s
        #: Default window width for :meth:`tenant_window` / status tables.
        self.window_s = window_s
        self._next_scrape_s: Optional[float] = None

    # ------------------------------------------------------- service hooks
    #
    # Submission-side hooks (submit/reject/admit) stamp the request's
    # *arrival* instant, which in an open-loop workload can lie ahead of
    # the drain loop's frontier.  They therefore only touch event series
    # that are fed exclusively from the submission path (arrivals are
    # nondecreasing across submit calls), never the drain-side series or
    # the scrape cadence — per-series sample order stays monotonic.
    def on_submit(self, t_s: float, tenant: str) -> None:
        self.recorder.observe(
            "pdc_service_outcomes", t_s, 1.0, tenant=tenant, outcome="submitted"
        )

    def on_reject(self, t_s: float, tenant: str, reason: str) -> None:
        self.recorder.observe(
            "pdc_service_outcomes", t_s, 1.0, tenant=tenant, outcome="rejected"
        )

    def on_admit(self, t_s: float, tenant: str, depth: int) -> None:
        self.recorder.observe(
            "pdc_service_outcomes", t_s, 1.0, tenant=tenant, outcome="admitted"
        )

    def on_shed(self, t_s: float, tenant: str, waited_s: float) -> None:
        self.recorder.observe(
            "pdc_service_outcomes", t_s, 1.0, tenant=tenant, outcome="shed"
        )
        self.slo.observe(t_s, tenant, "shed", queue_wait_s=waited_s)

    def on_dispatch(
        self, t_s: float, tenant: str, queue_wait_s: float, depth: int
    ) -> None:
        self.recorder.observe(
            "pdc_service_queue_wait_sim_seconds", t_s, queue_wait_s,
            tenant=tenant,
        )
        self.recorder.record(
            "pdc_service_queue_depth", t_s, float(depth), kind="gauge",
            tenant=tenant,
        )

    def on_complete(
        self,
        t_s: float,
        tenant: str,
        status: str,
        queue_wait_s: float,
        service_s: float,
        degraded: bool = False,
        timed_out: bool = False,
    ) -> None:
        self.recorder.observe(
            "pdc_service_outcomes", t_s, 1.0, tenant=tenant, outcome=status
        )
        if status == "done":
            self.recorder.observe(
                "pdc_service_service_sim_seconds", t_s, service_s,
                tenant=tenant,
            )
        if degraded:
            self.recorder.observe(
                "pdc_service_outcomes", t_s, 1.0, tenant=tenant,
                outcome="degraded",
            )
        if timed_out:
            self.recorder.observe(
                "pdc_service_outcomes", t_s, 1.0, tenant=tenant,
                outcome="timeout",
            )
        self.slo.observe(
            t_s, tenant, status, queue_wait_s=queue_wait_s, timed_out=timed_out
        )

    # ----------------------------------------------------- scheduler hooks
    def on_window(
        self,
        t_s: float,
        width: int,
        elapsed_s: float,
        shared_reads: int,
        saved_bytes: float,
    ) -> None:
        self.recorder.observe("pdc_window_width", t_s, float(width))
        self.recorder.observe("pdc_window_sim_seconds", t_s, elapsed_s)
        self.recorder.observe(
            "pdc_window_shared_reads", t_s, float(shared_reads)
        )
        self.recorder.observe(
            "pdc_window_saved_bytes_virtual", t_s, saved_bytes
        )
        self._maybe_scrape(t_s)

    # -------------------------------------------------------- server hooks
    def on_region_read(
        self, t_s: float, server_id: int, nbytes: float, category: str,
        result: str = "read",
    ) -> None:
        # ``result="hit"`` samples are warm-cache region accesses (served
        # from memory, no PFS read); "read" samples actually paid storage
        # time.  Both matter for the utilization view.
        self.recorder.observe(
            "pdc_server_read_bytes", t_s, float(nbytes),
            server=f"server{server_id}", result=result,
        )

    # -------------------------------------------------------- ingest hooks
    def on_ingest_epoch(
        self,
        t_s: float,
        tenant: str,
        epoch: int,
        n_ops: int,
        n_elements: int,
        lag_s: float,
        hist_merges: int = 0,
        hist_rebuilds: int = 0,
        compactions: int = 0,
    ) -> None:
        """One applied ingest epoch: rate series plus the ingest-lag SLI
        (an epoch whose apply lag exceeds the SLO threshold is a bad
        event)."""
        self.recorder.observe(
            "pdc_ingest_ops", t_s, float(n_ops), tenant=tenant
        )
        self.recorder.observe(
            "pdc_ingest_elements", t_s, float(n_elements), tenant=tenant
        )
        self.recorder.observe(
            "pdc_ingest_lag_sim_seconds", t_s, float(lag_s), tenant=tenant
        )
        if hist_merges:
            self.recorder.observe(
                "pdc_ingest_maintenance", t_s, float(hist_merges),
                tenant=tenant, action="merge",
            )
        if hist_rebuilds:
            self.recorder.observe(
                "pdc_ingest_maintenance", t_s, float(hist_rebuilds),
                tenant=tenant, action="rebuild",
            )
        if compactions:
            self.recorder.observe(
                "pdc_ingest_maintenance", t_s, float(compactions),
                tenant=tenant, action="compact",
            )
        self.slo.observe(t_s, tenant, "ingest_epoch", queue_wait_s=lag_s)
        self._maybe_scrape(t_s)

    def on_compaction(
        self, t_s: float, object_name: str, region_id: int, delta_elements: int
    ) -> None:
        """One background index compaction (delta segments folded in)."""
        self.recorder.observe(
            "pdc_compaction_delta_elements", t_s, float(delta_elements),
            object=object_name,
        )

    # ------------------------------------------------------- cluster hooks
    #
    # Cluster hooks stamp clock-frontier instants (a migration commits at
    # the post-transfer barrier), which can run *ahead* of the drain
    # loop's dispatch frontier.  Like the submission-side hooks above,
    # they therefore only touch series fed exclusively from the cluster
    # path and never drive the scrape cadence — otherwise a scrape at the
    # migration frontier would poison drain-fed series (queue depth is
    # both a registry gauge and a dispatch-hook series) with a timestamp
    # the next dispatch sample would then precede.
    def on_membership(
        self,
        t_s: float,
        server_id: int,
        kind: str,
        state: str,
        generation: int,
        n_serving: int,
    ) -> None:
        """One membership transition (join/activate/drain/leave/crash/
        lease_expire/recover) plus the fleet gauges it implies."""
        self.recorder.record(
            "pdc_cluster_membership_events", t_s, 1.0, kind="event",
            # The transition kind is a label legitimately named like the
            # series kind parameter, hence the dict form (renamed "event"
            # to keep exports unambiguous).
            labels={"server": f"server{server_id}", "event": kind},
        )
        self.recorder.record("pdc_cluster_generation", t_s, float(generation))
        self.recorder.record(
            "pdc_cluster_serving_servers", t_s, float(n_serving)
        )

    def on_migration(
        self,
        t_s: float,
        n_moves: int,
        moved_vbytes: float,
        duration_s: float,
        status: str,
    ) -> None:
        """One finished (committed or aborted) region migration: volume
        series plus the migration-duration SLI."""
        self.recorder.observe(
            "pdc_cluster_migration_moves", t_s, float(n_moves), status=status
        )
        self.recorder.observe(
            "pdc_cluster_migration_bytes_virtual", t_s, float(moved_vbytes),
            status=status,
        )
        self.recorder.observe(
            "pdc_cluster_migration_sim_seconds", t_s, float(duration_s),
            status=status,
        )
        self.slo.observe(t_s, "cluster", "migration", queue_wait_s=duration_s)

    def on_scale_decision(
        self, t_s: float, action: str, amount: int, n_servers: int, reason: str
    ) -> None:
        """One autoscaler action and the resulting fleet size."""
        self.recorder.observe(
            "pdc_cluster_scale_decisions", t_s, float(amount), action=action
        )
        self.recorder.record("pdc_cluster_servers", t_s, float(n_servers))

    # ------------------------------------------------------ parallel hooks
    def on_parallel(self, t_s: float, wall_registry) -> None:
        """Scrape the parallel runtime's wall-side counters
        (``pdc_parallel_*``: tasks dispatched, in-process fallbacks by
        reason, snapshot re-forks, IPC result bytes) into the recorder.

        The counters live in a runtime-owned registry — deliberately
        outside the system's, whose rendered text is fingerprint-pinned
        across worker counts — so this scrape is the only bridge from
        pool bookkeeping into series and OpenMetrics export.
        """
        self.recorder.scrape(wall_registry, t_s)

    # ---------------------------------------------------------------- time
    def on_tick(self, t_s: float) -> None:
        """Service-loop heartbeat: re-evaluates SLOs so alerts can clear
        even when no new terminal events arrive."""
        self.slo.evaluate(t_s)
        self._maybe_scrape(t_s)

    def _maybe_scrape(self, t_s: float) -> None:
        if self.registry is None or self.scrape_interval_s is None:
            return
        if self._next_scrape_s is None:
            self._next_scrape_s = t_s  # first event starts the cadence
        while t_s >= self._next_scrape_s:
            self.recorder.scrape(self.registry, t_s)
            self._next_scrape_s += self.scrape_interval_s

    # ------------------------------------------------------------- queries
    @property
    def alerts(self) -> List[Alert]:
        return self.slo.alerts

    def subscribe(self, callback) -> None:
        """Forward to :meth:`SLOMonitor.subscribe`."""
        self.slo.subscribe(callback)

    def fingerprint(self) -> str:
        """The alert stream's deterministic fingerprint."""
        return self.slo.fingerprint()

    def tenant_window(
        self,
        tenant: str,
        t_end: Optional[float] = None,
        width_s: Optional[float] = None,
    ) -> Dict[str, WindowStats]:
        """Windowed per-tenant view at ``t_end`` (default: latest sample):
        queue wait distribution, completion/shed rates, queue depth."""
        t = self.recorder.t_latest if t_end is None else t_end
        w = self.window_s if width_s is None else width_s
        out = {
            "queue_wait": self.recorder.window(
                "pdc_service_queue_wait_sim_seconds", t, w, tenant=tenant
            ),
            "queue_depth": self.recorder.window(
                "pdc_service_queue_depth", t, w, tenant=tenant
            ),
        }
        for outcome in ("submitted", "done", "shed", "rejected", "failed"):
            out[outcome] = self.recorder.window(
                "pdc_service_outcomes", t, w, tenant=tenant, outcome=outcome
            )
        return out

    def slo_rows(self) -> List[SLOState]:
        return list(self.slo.states)

    def render_status(
        self, t_end: Optional[float] = None, width_s: Optional[float] = None
    ) -> str:
        """One status table: per-SLO burn rates + per-tenant window stats
        — what ``python -m repro monitor`` prints."""
        t = self.recorder.t_latest if t_end is None else t_end
        w = self.window_s if width_s is None else width_s
        lines = [
            f"monitor status @ t={t * 1e3:.3f} simulated ms "
            f"(window {w * 1e3:.1f} ms)"
        ]
        lines.append(
            f"  {'slo':<16} {'tenant':<10} {'sli':<10} {'burn_fast':>9} "
            f"{'burn_slow':>9} {'budget':>7}  state"
        )
        for st in self.slo.states:
            state = []
            if st.firing_fast:
                state.append("FAST-BURN")
            if st.firing_slow:
                state.append("SLOW-BURN")
            lines.append(
                f"  {st.slo.name:<16} {st.slo.tenant:<10} {st.slo.sli:<10} "
                f"{st.burn_fast:>9.2f} {st.burn_slow:>9.2f} "
                f"{st.budget_used * 100:>6.1f}%  {'+'.join(state) or 'ok'}"
            )
        tenants = sorted(
            {
                s.labels["tenant"]
                for s in self.recorder.all_series()
                if "tenant" in s.labels
            }
        )
        if tenants:
            lines.append(
                f"  {'tenant':<10} {'req/s':>8} {'done/s':>8} {'shed/s':>8} "
                f"{'p50 wait ms':>12} {'p95 wait ms':>12} {'p99 wait ms':>12}"
            )
            for tenant in tenants:
                tw = self.tenant_window(tenant, t, w)
                qw = tw["queue_wait"]
                lines.append(
                    f"  {tenant:<10} {tw['submitted'].rate:>8.0f} "
                    f"{tw['done'].rate:>8.0f} {tw['shed'].rate:>8.0f} "
                    f"{_ms(qw.p50):>12} {_ms(qw.p95):>12} {_ms(qw.p99):>12}"
                )
        return "\n".join(lines)


def _ms(v: float) -> str:
    return "-" if v != v else f"{v * 1e3:.3f}"  # NaN-safe


# --------------------------------------------------------------- demo run
@dataclass
class MonitorRun:
    """Everything the shared overload scenario produced."""

    system: object
    service: object
    monitor: Optional[ServiceMonitor]
    tickets: List[object]
    #: Simulated end of the run (latest clock after drain).
    t_end: float
    alerts: List[Alert] = field(default_factory=list)


def demo_slos(
    fast_window_s: float = 0.008, slow_window_s: float = 0.04
) -> Tuple[SLO, ...]:
    """The demo scenario's SLOs: shed rate on the rate-limited tenant,
    p-high queue wait on the steady tenant, error rate across tenants."""
    return (
        SLO(
            name="bursty-shed",
            tenant="bursty",
            sli="shed",
            objective=0.90,
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
            fast_burn=5.0,
            slow_burn=1.0,
        ),
        SLO(
            name="steady-wait",
            tenant="steady",
            sli="queue_wait",
            objective=0.95,
            threshold_s=0.004,
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
            fast_burn=5.0,
            slow_burn=1.0,
        ),
        SLO(
            name="any-error",
            tenant="*",
            sli="error",
            objective=0.99,
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
            fast_burn=5.0,
            slow_burn=1.0,
        ),
    )


def demo_monitor_run(
    seed: int = 1234,
    requests: int = 150,
    monitored: bool = True,
    fault_plan=None,
    scrape_interval_s: Optional[float] = 0.002,
) -> MonitorRun:
    """The deterministic overload scenario every monitor surface shares.

    Two tenants on the demo deployment: ``steady`` (no knobs) and
    ``bursty`` (rate-limited with a queue deadline).  Seeded Poisson
    arrivals run light → overload (the burst tenant's offered load far
    exceeds its rate limit, queues back up, sheds begin) → light again,
    so the fast-burn alert must fire during the surge and clear once the
    backlog drains.  With ``monitored=False`` the run is the zero-cost
    control: no monitor is installed and the system behaves exactly as a
    pre-monitor build.
    """
    import numpy as np

    from ..service import QueryService, ServiceConfig, Tenant
    from ..query.ast import Condition
    from ..types import PDCType, QueryOp
    from .metrics import MetricsRegistry
    from .regress import demo_deployment

    # An isolated registry: the scrape cadence records counter series,
    # so sharing the process-wide registry would make the sample count
    # depend on whatever else ran in this process.
    system, _, _ = demo_deployment(metrics=MetricsRegistry())
    monitor: Optional[ServiceMonitor] = None
    if monitored:
        monitor = ServiceMonitor(
            slos=demo_slos(),
            registry=system.metrics,
            scrape_interval_s=scrape_interval_s,
        )
        system.set_monitor(monitor)
    if fault_plan is not None:
        system.set_fault_plan(fault_plan)

    cfg = ServiceConfig(
        tenants=(
            Tenant("steady", weight=2.0),
            Tenant(
                "bursty",
                weight=1.0,
                rate_limit_qps=2000.0,
                burst=4.0,
                queue_cap=32,
                queue_deadline_s=0.002,
            ),
        ),
        policy="wfq",
        batch_window=4,
    )
    svc = QueryService(system, cfg)

    rng = np.random.default_rng(seed)
    t = max(c.now for c in system.all_clocks())
    n_light = requests // 3
    n_heavy = requests - 2 * n_light
    phases = (
        # (count, aggregate rate qps, bursty share)
        (n_light, 400.0, 0.3),
        (n_heavy, 6000.0, 0.7),
        (n_light, 400.0, 0.3),
    )
    tickets = []
    for count, rate, bursty_share in phases:
        for _ in range(count):
            t += float(rng.exponential(1.0 / rate))
            tenant = "bursty" if rng.random() < bursty_share else "steady"
            q = Condition(
                "energy", QueryOp.GT, PDCType.FLOAT,
                float(np.float32(rng.uniform(0.5, 3.0))),
            )
            tickets.append(svc.submit(tenant, q, arrival_s=t))
    svc.drain()
    svc.close()
    t_end = max(c.now for c in system.all_clocks())
    if monitor is not None:
        # Final tick so burn rates settle at the drained frontier.
        monitor.on_tick(t_end)
    return MonitorRun(
        system=system,
        service=svc,
        monitor=monitor,
        tickets=tickets,
        t_end=t_end,
        alerts=list(monitor.alerts) if monitor is not None else [],
    )
