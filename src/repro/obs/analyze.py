"""EXPLAIN ANALYZE: join planner estimates with executor actuals.

``repro.query.planner.explain`` renders what the planner *thinks* will
happen — selectivity bounds from the global histogram, regions surviving
min/max elimination, the access path per step.  This module runs the
query too and joins each :class:`~repro.query.planner.StepEstimate`
with the :class:`~repro.query.executor.StepActual` the executor recorded
for the same condition, yielding the estimate-vs-actual error per step:
exactly the feedback loop that makes ``docs/cost_model.md`` calibratable
(PairwiseHist makes the same point for histogram estimates: accuracy
numbers against actuals are what justify the estimator).

The analysis run itself obeys the PR-1 invariant: step actuals are pure
reads of counters and clock frontiers, and the temporary tracer (for the
per-server utilization section) never charges simulated time — an
analyzed query costs exactly what the same query costs un-analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..query.executor import (
    BatchResult,
    QueryEngine,
    QueryResult,
    QuerySpec,
    StepActual,
)
from ..query.planner import PlanEstimate, StepEstimate, choose_strategy, estimate_plan
from ..strategies import Strategy
from .profiler import ProfileReport, profile
from .tracer import Tracer

__all__ = [
    "StepJoin",
    "QueryAnalysis",
    "BatchAnalysis",
    "analyze",
    "analyze_batch",
    "render_analysis",
    "render_batch_analysis",
]


@dataclass
class StepJoin:
    """One plan step's estimate next to its measured actual.

    Either side may be missing: the executor short-circuits a conjunct
    whose candidate set empties (no actual for the remaining estimates),
    and degraded plans may take steps the estimate did not foresee.
    """

    conjunct: int
    estimate: Optional[StepEstimate]
    actual: Optional[StepActual]

    @property
    def hits_in_bounds(self) -> Optional[bool]:
        """Whether measured hits landed inside the estimated bounds."""
        if self.estimate is None or self.actual is None:
            return None
        lo, hi = self.estimate.est_hits
        return lo <= self.actual.hits <= hi

    @property
    def hits_error(self) -> Optional[float]:
        """Actual hits / estimated midpoint (1.0 = spot on)."""
        if self.estimate is None or self.actual is None:
            return None
        lo, hi = self.estimate.est_hits
        mid = (lo + hi) / 2.0
        if mid <= 0.0:
            return None if self.actual.hits == 0 else float("inf")
        return self.actual.hits / mid


@dataclass
class QueryAnalysis:
    """EXPLAIN ANALYZE output for one query."""

    strategy: Strategy
    plan: PlanEstimate
    result: QueryResult
    steps: List[StepJoin] = field(default_factory=list)
    #: Per-clock utilization/skew of the analyzed run (None when no spans
    #: were recorded, e.g. a semantic-cache serve).
    profile: Optional[ProfileReport] = None
    #: Estimated seconds of every candidate strategy (AUTO resolution).
    candidates: Dict[str, float] = field(default_factory=dict)

    @property
    def est_seconds(self) -> float:
        return self.plan.est_seconds

    @property
    def actual_seconds(self) -> float:
        return self.result.elapsed_s + self.result.batch_shared_elapsed_s

    @property
    def time_error(self) -> float:
        """Actual / estimated elapsed (1.0 = the cost model was exact)."""
        if self.est_seconds <= 0.0:
            return float("inf") if self.actual_seconds > 0 else 1.0
        return self.actual_seconds / self.est_seconds


@dataclass
class BatchAnalysis:
    """EXPLAIN ANALYZE output for one shared-scan batch window."""

    batch: BatchResult
    queries: List[Optional[QueryAnalysis]] = field(default_factory=list)


def _join_steps(
    plan: PlanEstimate, actuals: Sequence[StepActual]
) -> List[StepJoin]:
    """Pair estimates and actuals per conjunct, by object name where
    possible (plan order and evaluation order can differ when the
    strategy ignores selectivity ordering), positionally otherwise."""
    est_by_c: Dict[int, List[StepEstimate]] = {}
    for e in plan.steps:
        est_by_c.setdefault(e.conjunct, []).append(e)
    act_by_c: Dict[int, List[StepActual]] = {}
    for a in actuals:
        act_by_c.setdefault(a.conjunct, []).append(a)

    joins: List[StepJoin] = []
    for ci in sorted(set(est_by_c) | set(act_by_c)):
        ests = list(est_by_c.get(ci, []))
        acts = act_by_c.get(ci, [])
        used = [False] * len(ests)
        paired: List[Tuple[Optional[StepEstimate], Optional[StepActual]]] = []
        for a in acts:
            match = None
            for i, e in enumerate(ests):
                if not used[i] and e.object_name == a.object_name:
                    match = i
                    break
            if match is None:  # positional fallback: first unused estimate
                for i in range(len(ests)):
                    if not used[i]:
                        match = i
                        break
            if match is not None:
                used[match] = True
                paired.append((ests[match], a))
            else:
                paired.append((None, a))
        for i, e in enumerate(ests):
            if not used[i]:
                paired.append((e, None))
        joins.extend(StepJoin(ci, e, a) for e, a in paired)
    return joins


def _resolve_strategy(
    system, node, strategy: Optional[Strategy]
) -> Tuple[Strategy, Dict[str, float]]:
    strat = strategy or system.strategy
    if strat is Strategy.AUTO:
        chosen, cands = choose_strategy(system, node, record=False)
        return chosen, {p.strategy.name: p.est_seconds for p in cands}
    return strat, {}


def analyze(
    system,
    node,
    engine: Optional[QueryEngine] = None,
    strategy: Optional[Strategy] = None,
    **execute_kwargs,
) -> QueryAnalysis:
    """Plan a query, execute it, and join estimates with actuals.

    The plan is estimated *before* execution (the planner's cache-aware
    read costs must see the pre-query cache state).  When the system has
    no real tracer installed, a temporary one is mounted for the run so
    the report can include per-server utilization — and removed after.
    """
    if engine is None:
        engine = QueryEngine(system)
    strat, candidates = _resolve_strategy(system, node, strategy)
    plan = estimate_plan(system, node, strat)

    own_tracer = not system.tracer.enabled
    if own_tracer:
        system.set_tracer(Tracer())
    try:
        result = engine.execute(node, strategy=strat, **execute_kwargs)
        prof = (
            profile(system.tracer, result.trace)
            if result.trace is not None else None
        )
    finally:
        if own_tracer:
            from .tracer import NOOP_TRACER

            system.set_tracer(NOOP_TRACER)

    return QueryAnalysis(
        strategy=strat,
        plan=plan,
        result=result,
        steps=_join_steps(plan, result.step_actuals),
        profile=prof,
        candidates=candidates,
    )


def analyze_batch(
    system,
    specs: Sequence[QuerySpec],
    engine: Optional[QueryEngine] = None,
    selection_cache=None,
) -> BatchAnalysis:
    """EXPLAIN ANALYZE for a shared-scan batch window.

    Each query is planned cold (before the window runs), then the window
    executes as one :meth:`QueryEngine.execute_batch`; per-query actuals
    include the attributed share of the shared read pass, so preloaded
    regions do not make a query look free.
    """
    if engine is None:
        engine = QueryEngine(system)
    specs = [
        s if isinstance(s, QuerySpec) else QuerySpec(node=s) for s in specs
    ]
    plans: List[Tuple[Strategy, PlanEstimate, Dict[str, float]]] = []
    for spec in specs:
        strat, candidates = _resolve_strategy(system, spec.node, spec.strategy)
        plans.append((strat, estimate_plan(system, spec.node, strat), candidates))

    own_tracer = not system.tracer.enabled
    if own_tracer:
        system.set_tracer(Tracer())
    try:
        batch = engine.execute_batch(specs, selection_cache=selection_cache)
        analyses: List[Optional[QueryAnalysis]] = []
        for (strat, plan, candidates), result in zip(plans, batch.results):
            if result is None:
                analyses.append(None)
                continue
            analyses.append(
                QueryAnalysis(
                    strategy=strat,
                    plan=plan,
                    result=result,
                    steps=_join_steps(plan, result.step_actuals),
                    profile=(
                        profile(system.tracer, result.trace)
                        if result.trace is not None else None
                    ),
                    candidates=candidates,
                )
            )
    finally:
        if own_tracer:
            from .tracer import NOOP_TRACER

            system.set_tracer(NOOP_TRACER)
    return BatchAnalysis(batch=batch, queries=analyses)


# ------------------------------------------------------------------ render
def _fmt_hits(j: StepJoin) -> str:
    e, a = j.estimate, j.actual
    if e is not None and a is not None:
        lo, hi = e.est_hits
        err = j.hits_error
        verdict = "within bounds" if j.hits_in_bounds else (
            f"x{err:.2f} vs midpoint" if err not in (None, float("inf"))
            else "outside bounds"
        )
        return f"est hits [{lo:.0f}, {hi:.0f}] -> actual {a.hits} ({verdict})"
    if a is not None:
        return f"actual {a.hits} hits (no matching estimate)"
    assert e is not None
    lo, hi = e.est_hits
    return f"est hits [{lo:.0f}, {hi:.0f}] -> not evaluated (short-circuit)"


def render_analysis(qa: QueryAnalysis, label: str = "QUERY") -> str:
    """The annotated plan tree: per-step estimate vs actual."""
    res = qa.result
    lines = [f"EXPLAIN ANALYZE  {label}"]
    lines.append(
        f"strategy {qa.strategy.paper_label}: estimated "
        f"{qa.est_seconds * 1e3:.3f} ms -> actual "
        f"{qa.actual_seconds * 1e3:.3f} ms (x{qa.time_error:.2f})"
    )
    if qa.candidates:
        ranked = sorted(qa.candidates.items(), key=lambda kv: kv[1])
        lines.append(
            "  AUTO candidates: "
            + ", ".join(f"{n} {v * 1e3:.3f}ms" for n, v in ranked)
        )
    for note in qa.plan.notes:
        lines.append(f"  note: {note}")
    if res.semantic_cache:
        lines.append(
            f"  served by semantic selection cache ({res.semantic_cache}): "
            f"{res.nhits} hits, no evaluation steps"
        )
    cur_conjunct = None
    for j in qa.steps:
        if j.conjunct != cur_conjunct:
            cur_conjunct = j.conjunct
            lines.append(f"conjunct[{cur_conjunct}]:")
        name = (
            j.actual.object_name if j.actual is not None
            else j.estimate.object_name  # type: ignore[union-attr]
        )
        iv = j.actual.interval if j.actual is not None else j.estimate.interval  # type: ignore[union-attr]
        lines.append(f"  {name} {iv}")
        lines.append(f"    {_fmt_hits(j)}")
        if j.estimate is not None:
            e = j.estimate
            lines.append(
                f"    plan: {e.access_path}, regions "
                f"{e.surviving_regions}/{e.total_regions} "
                f"({e.pruned_fraction * 100:.0f}% pruned), selectivity "
                f"[{e.selectivity[0] * 100:.4f}%, {e.selectivity[1] * 100:.4f}%]"
            )
        if j.actual is not None:
            a = j.actual
            lines.append(
                f"    actual: {a.access_path}, read {a.regions_read} "
                f"cached {a.regions_cached} pruned {a.regions_pruned} "
                f"idx {a.index_reads}, {a.bytes_read_virtual / 1024:.1f} KiB, "
                f"{a.elapsed_s * 1e3:.3f} ms"
            )
    lines.append(
        f"totals: {res.nhits} hits, read {res.regions_read} cached "
        f"{res.regions_cached} pruned {res.regions_pruned} idx "
        f"{res.index_reads}, {res.bytes_read_virtual / 1024:.1f} KiB"
        + (
            f", retries {res.retries}, failovers {res.failovers}"
            if res.retries or res.failovers else ""
        )
        + ("" if res.complete else "  [DEGRADED]")
    )
    if res.batch_shared_bytes_virtual > 0:
        lines.append(
            f"batch share: {res.batch_shared_bytes_virtual / 1024:.1f} KiB "
            f"read by the shared pass on this query's behalf "
            f"(+{res.batch_shared_elapsed_s * 1e3:.3f} ms attributed)"
        )
    if qa.profile is not None and qa.profile.tracks:
        lines.append("per-server utilization:")
        for t in qa.profile.tracks:
            lines.append(
                f"  {t.track:<10} {t.busy_s * 1e3:9.3f} ms busy "
                f"({t.utilization * 100:5.1f}%)"
            )
        if qa.profile.stragglers:
            lines.append(
                f"  imbalance ratio (max/mean server busy): "
                f"{qa.profile.imbalance_ratio:.3f}"
            )
    return "\n".join(lines)


def render_batch_analysis(ba: BatchAnalysis) -> str:
    b = ba.batch
    lines = [
        f"EXPLAIN ANALYZE BATCH  width {b.width}, "
        f"{b.elapsed_s * 1e3:.3f} ms, shared reads {b.shared_reads} "
        f"({b.shared_bytes_virtual / 1024:.1f} KiB, saved "
        f"{b.saved_bytes_virtual / 1024:.1f} KiB)"
    ]
    for i, qa in enumerate(ba.queries):
        lines.append("")
        if qa is None:
            err = b.errors.get(i)
            lines.append(f"query[{i}]: failed: {err!r}")
            continue
        lines.append(render_analysis(qa, label=f"query[{i}]"))
    return "\n".join(lines)
