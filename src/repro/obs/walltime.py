"""Wall-clock observability for the real-parallel runtime.

Everything else in ``repro.obs`` observes *simulated* time, which is
deterministic and therefore pinnable to 1e-9.  This module observes the
one thing the simulator cannot pin: where the **wall clock** goes when
the numpy hot kernels run in the forked process pool
(:mod:`repro.query.parallel`) — or inline, on the serial hot path.

Three layers, all built on one :class:`WallProfiler`:

* **Dual-clock pool tracing.**  The main process stamps per-dispatch
  spans (fork, submit, result wait, merge); each pooled task additionally
  carries a lightweight stamp buffer home with its result (worker pid,
  the fork-generation wall instant inherited at fork time, kernel
  start/end, result-preparation end, result payload bytes).  Both sides
  stamp the *same* clock — ``time.perf_counter`` is CLOCK_MONOTONIC on
  Linux, which is system-wide, so parent and forked-child timestamps are
  directly comparable and :func:`build_report` can join them into
  per-worker timelines.
* **Overhead attribution.**  :meth:`PoolTraceReport.buckets` decomposes
  the measured main-thread wall time into five named buckets — kernel,
  fork+warmup, IPC, merge-wait, serial-residue — plus per-worker
  utilization and per-partition skew.  The decomposition is built from
  *disjoint* main-thread intervals (the wait interval is split using the
  busy-union of worker kernel stamps), so the buckets can never
  double-count: they sum to at most the measured total, and the residue
  is the remainder by construction.
* **Export.**  :func:`report_tracer` rebuilds the joined timelines as a
  :class:`~repro.obs.tracer.Tracer` (track ``main`` plus one track per
  worker pid), so the existing Chrome/speedscope/collapsed writers in
  :mod:`repro.obs.profiler` work unchanged on wall-clock pool traces.

The zero-cost invariant of every obs layer holds here too: the runtime
and engine hold ``profiler = None`` by default and every instrumentation
site is a single attribute test — with profiling off, answers, simulated
clocks, metrics, and bench fingerprints are bit-identical to a build
without this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "WallProfiler",
    "TaskTrace",
    "DispatchTrace",
    "PoolTraceReport",
    "BUCKET_NAMES",
    "build_report",
    "report_to_dict",
    "render_report",
    "report_tracer",
    "efficiency_table",
    "render_efficiency",
    "merge_intervals",
    "clip_intervals",
    "subtract_intervals",
    "interval_length",
]

#: The five attribution buckets, in render order.  ``serial_residue`` is
#: main-thread time no other bucket claims (planning, simulated-cost
#: charges, metric bookkeeping, python overhead).
BUCKET_NAMES = ("kernel", "fork", "ipc", "merge_wait", "serial_residue")


# ------------------------------------------------------------- interval math
def merge_intervals(
    intervals: Sequence[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """Sorted, disjoint union of the intervals (degenerate ones dropped)."""
    ivs = sorted((lo, hi) for lo, hi in intervals if hi > lo)
    out: List[Tuple[float, float]] = []
    for lo, hi in ivs:
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def clip_intervals(
    intervals: Sequence[Tuple[float, float]], lo: float, hi: float
) -> List[Tuple[float, float]]:
    """Intersect every interval with ``[lo, hi]``."""
    return [
        (max(a, lo), min(b, hi))
        for a, b in intervals
        if min(b, hi) > max(a, lo)
    ]


def subtract_intervals(
    base: Sequence[Tuple[float, float]],
    covered: Sequence[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """``base`` minus ``covered``; both may overlap internally."""
    out: List[Tuple[float, float]] = []
    covered = merge_intervals(covered)
    for lo, hi in merge_intervals(base):
        cur = lo
        for clo, chi in covered:
            if chi <= cur:
                continue
            if clo >= hi:
                break
            if clo > cur:
                out.append((cur, clo))
            cur = max(cur, chi)
            if cur >= hi:
                break
        if cur < hi:
            out.append((cur, hi))
    return out


def interval_length(intervals: Sequence[Tuple[float, float]]) -> float:
    return sum(hi - lo for lo, hi in merge_intervals(intervals))


# ------------------------------------------------------------------ records
@dataclass
class TaskTrace:
    """One pooled kernel task, stamped on both sides of the fork.

    Main-side stamps (``t_submit``/``t_recv``) and worker-side stamps
    (``t_start``/``t_kernel_end``/``t_ret``) share one monotonic clock,
    so ``t_start - t_submit`` is real queue/fork latency and
    ``t_recv - t_ret`` is real result serialize+pipe+deserialize time.
    """

    kernel: str
    part: int
    n_elements: int
    #: Main side: just before / after this task's submit + result.
    t_submit: float = 0.0
    t_recv: float = 0.0
    #: Worker side (shipped home with the result).
    pid: int = 0
    gen: int = 0
    #: Parent's wall instant when it initiated the (lazy) fork — the
    #: module global the child inherited at fork time.
    fork_wall_s: float = 0.0
    t_start: float = 0.0
    t_kernel_end: float = 0.0
    t_ret: float = 0.0
    result_bytes: int = 0

    @property
    def kernel_s(self) -> float:
        return max(0.0, self.t_kernel_end - self.t_start)


@dataclass
class DispatchTrace:
    """One pooled kernel call: a fan-out of tasks plus the main-thread
    phase boundaries around them (submit / wait / merge)."""

    kernel: str
    t0: float
    t_submit_end: float = 0.0
    t_wait_end: float = 0.0
    t_merge_end: float = 0.0
    tasks: List[TaskTrace] = field(default_factory=list)

    @property
    def skew(self) -> float:
        """Max/mean per-partition kernel time (1.0 = perfectly even;
        0.0 when no worker stamps came home)."""
        durs = [t.kernel_s for t in self.tasks if t.t_kernel_end > 0.0]
        if not durs:
            return 0.0
        mean = sum(durs) / len(durs)
        return (max(durs) / mean) if mean > 0 else 0.0


class WallProfiler:
    """Collects wall-clock stamps from the runtime, the engine's serial
    hot path, and the pooled workers.

    ``timer`` is injectable (tests drive the whole layer with a fake
    deterministic clock); the default is :func:`time.perf_counter`,
    whose Linux backing clock (CLOCK_MONOTONIC) is shared between the
    main process and its forked children.
    """

    def __init__(
        self, timer: Callable[[], float] = time.perf_counter
    ) -> None:
        self.timer = timer
        #: Parent-side pool (re-)fork work: ``_ensure_pool`` intervals.
        self.fork_spans: List[Tuple[float, float]] = []
        #: Pooled kernel calls.
        self.dispatches: List[DispatchTrace] = []
        #: Inline kernel runs: ``(kernel, t0, t1, n_elements)`` — the
        #: serial hot path, or a pool fallback computing in-process.
        self.inline_spans: List[Tuple[str, float, float, int]] = []
        #: Measured windows: ``(label, t0, t1)``.  Buckets are attributed
        #: within these; anything outside is ignored.
        self.run_spans: List[Tuple[str, float, float]] = []

    # ------------------------------------------------------------- recording
    def record_fork(self, t0: float, t1: float) -> None:
        self.fork_spans.append((t0, t1))

    def record_inline(
        self, kernel: str, t0: float, t1: float, n_elements: int
    ) -> None:
        self.inline_spans.append((kernel, t0, t1, int(n_elements)))

    def dispatch(self, kernel: str) -> DispatchTrace:
        """Open a dispatch record at the current instant; the runtime
        fills the phase boundaries as the call progresses."""
        d = DispatchTrace(kernel=kernel, t0=self.timer())
        self.dispatches.append(d)
        return d

    class _RunHandle:
        __slots__ = ("_prof", "_label", "_t0")

        def __init__(self, prof: "WallProfiler", label: str) -> None:
            self._prof = prof
            self._label = label

        def __enter__(self) -> "WallProfiler._RunHandle":
            self._t0 = self._prof.timer()
            return self

        def __exit__(self, *exc) -> None:
            self._prof.run_spans.append(
                (self._label, self._t0, self._prof.timer())
            )

    def run(self, label: str = "run") -> "WallProfiler._RunHandle":
        """Context manager marking one measured window (one trial)."""
        return self._RunHandle(self, label)


# ------------------------------------------------------------------- report
@dataclass
class PoolTraceReport:
    """The joined dual-clock view of one profiled run."""

    #: Wall window covered by the recorded stamps (absolute clock).
    t0: float
    t1: float
    #: Total measured main-thread wall seconds (union of run spans when
    #: the caller marked any, else the whole window).
    total_s: float
    #: Named bucket -> seconds; the five keys of :data:`BUCKET_NAMES`.
    buckets: Dict[str, float]
    #: Fraction of ``total_s`` the five buckets account for (the residue
    #: bucket absorbs the remainder, so this is 1.0 unless stamps
    #: overlapped inconsistently).
    coverage: float
    #: pid -> {"tasks", "busy_s", "utilization", "first_latency_s"}.
    workers: Dict[int, Dict[str, float]]
    #: Max and mean of per-dispatch partition skew (max/mean kernel time).
    skew_max: float
    skew_mean: float
    dispatches: int
    pool_tasks: int
    inline_tasks: int
    ipc_result_bytes: int


def _decompose_wait(
    wait_lo: float,
    wait_hi: float,
    kernel_ivs: Sequence[Tuple[float, float]],
    fork_ivs: Sequence[Tuple[float, float]],
) -> Tuple[float, float, float, float]:
    """Split one blocking-wait interval into (kernel, fork, ipc,
    merge_wait) using the workers' kernel stamps.

    Priority: time covered by a worker kernel is ``kernel``; remaining
    time covered by a first-task fork gap is ``fork``; uncovered time
    before the last kernel finished is ``ipc`` (dispatch, serialize,
    pipe); uncovered time after every kernel finished is ``merge_wait``
    (draining stragglers' results).
    """
    if wait_hi <= wait_lo:
        return 0.0, 0.0, 0.0, 0.0
    k_cov = merge_intervals(clip_intervals(kernel_ivs, wait_lo, wait_hi))
    f_cov = subtract_intervals(
        clip_intervals(fork_ivs, wait_lo, wait_hi), k_cov
    )
    kernel_s = interval_length(k_cov)
    fork_s = interval_length(f_cov)
    covered = merge_intervals(list(k_cov) + list(f_cov))
    last_k = max((hi for _, hi in k_cov), default=wait_lo)
    ipc_s = merge_s = 0.0
    for lo, hi in subtract_intervals([(wait_lo, wait_hi)], covered):
        ipc_s += max(0.0, min(hi, last_k) - lo)
        merge_s += max(0.0, hi - max(lo, last_k))
    return kernel_s, fork_s, ipc_s, merge_s


def build_report(prof: WallProfiler) -> PoolTraceReport:
    """Join main-side and worker-side stamps into the attribution report."""
    stamps: List[float] = []
    for t0, t1 in prof.fork_spans:
        stamps += [t0, t1]
    for _, t0, t1, _ in prof.inline_spans:
        stamps += [t0, t1]
    for _, t0, t1 in prof.run_spans:
        stamps += [t0, t1]
    for d in prof.dispatches:
        stamps += [d.t0, d.t_merge_end or d.t_wait_end or d.t_submit_end]
    if not stamps:
        return PoolTraceReport(
            t0=0.0, t1=0.0, total_s=0.0,
            buckets={name: 0.0 for name in BUCKET_NAMES},
            coverage=1.0, workers={}, skew_max=0.0, skew_mean=0.0,
            dispatches=0, pool_tasks=0, inline_tasks=0, ipc_result_bytes=0,
        )
    t0, t1 = min(stamps), max(stamps)
    if prof.run_spans:
        windows = merge_intervals([(a, b) for _, a, b in prof.run_spans])
    else:
        windows = [(t0, t1)]
    total_s = interval_length(windows)

    # Attribution only counts main-thread time inside the measured
    # windows; clip every main-side interval accordingly.
    def clip_to_windows(
        ivs: Sequence[Tuple[float, float]]
    ) -> List[Tuple[float, float]]:
        out: List[Tuple[float, float]] = []
        for wlo, whi in windows:
            out += clip_intervals(ivs, wlo, whi)
        return out

    buckets = {name: 0.0 for name in BUCKET_NAMES}
    buckets["fork"] += interval_length(clip_to_windows(prof.fork_spans))
    buckets["kernel"] += interval_length(
        clip_to_windows([(a, b) for _, a, b, _ in prof.inline_spans])
    )

    first_by_pid: Dict[int, TaskTrace] = {}
    for d in prof.dispatches:
        for t in d.tasks:
            if t.t_start <= 0.0:
                continue
            prev = first_by_pid.get(t.pid)
            if prev is None or t.t_start < prev.t_start:
                first_by_pid[t.pid] = t

    pool_tasks = 0
    ipc_bytes = 0
    skews: List[float] = []
    for d in prof.dispatches:
        pool_tasks += len(d.tasks)
        ipc_bytes += sum(t.result_bytes for t in d.tasks)
        if len(d.tasks) > 1 and d.skew > 0.0:
            skews.append(d.skew)
        submit_ivs = clip_to_windows([(d.t0, d.t_submit_end)])
        buckets["ipc"] += interval_length(submit_ivs)
        if d.t_wait_end > d.t_submit_end:
            kernel_ivs = [
                (t.t_start, t.t_kernel_end)
                for t in d.tasks
                if t.t_kernel_end > t.t_start
            ]
            fork_ivs = [
                (t.t_submit, t.t_start)
                for t in d.tasks
                if first_by_pid.get(t.pid) is t and t.t_start > t.t_submit
            ]
            for wlo, whi in clip_to_windows(
                [(d.t_submit_end, d.t_wait_end)]
            ):
                k, f, i, m = _decompose_wait(wlo, whi, kernel_ivs, fork_ivs)
                buckets["kernel"] += k
                buckets["fork"] += f
                buckets["ipc"] += i
                buckets["merge_wait"] += m
        if d.t_merge_end > d.t_wait_end:
            buckets["merge_wait"] += interval_length(
                clip_to_windows([(d.t_wait_end, d.t_merge_end)])
            )

    accounted = sum(buckets.values())
    buckets["serial_residue"] = max(0.0, total_s - accounted)
    covered = min(total_s, accounted + buckets["serial_residue"])
    coverage = (covered / total_s) if total_s > 0 else 1.0

    workers: Dict[int, Dict[str, float]] = {}
    for pid in sorted(first_by_pid):
        kernel_ivs = [
            (t.t_start, t.t_kernel_end)
            for d in prof.dispatches
            for t in d.tasks
            if t.pid == pid and t.t_kernel_end > t.t_start
        ]
        busy = interval_length(kernel_ivs)
        first = first_by_pid[pid]
        workers[pid] = {
            "tasks": float(sum(
                1 for d in prof.dispatches for t in d.tasks if t.pid == pid
            )),
            "busy_s": busy,
            "utilization": (busy / total_s) if total_s > 0 else 0.0,
            "first_latency_s": max(0.0, first.t_start - first.t_submit),
        }

    return PoolTraceReport(
        t0=t0, t1=t1, total_s=total_s, buckets=buckets, coverage=coverage,
        workers=workers,
        skew_max=max(skews, default=0.0),
        skew_mean=(sum(skews) / len(skews)) if skews else 0.0,
        dispatches=len(prof.dispatches),
        pool_tasks=pool_tasks,
        inline_tasks=len(prof.inline_spans),
        ipc_result_bytes=ipc_bytes,
    )


def report_to_dict(report: PoolTraceReport) -> Dict[str, object]:
    """JSON-safe form for bench artifacts and reports."""
    return {
        "total_s": report.total_s,
        "buckets": dict(report.buckets),
        "coverage": report.coverage,
        "workers": {
            str(pid): dict(stats) for pid, stats in report.workers.items()
        },
        "skew_max": report.skew_max,
        "skew_mean": report.skew_mean,
        "dispatches": report.dispatches,
        "pool_tasks": report.pool_tasks,
        "inline_tasks": report.inline_tasks,
        "ipc_result_bytes": report.ipc_result_bytes,
    }


def render_report(report: PoolTraceReport) -> str:
    """Human-readable attribution table."""
    lines = [
        f"wall-clock attribution over {report.total_s * 1e3:.1f} ms "
        f"measured ({report.dispatches} pool dispatches, "
        f"{report.pool_tasks} tasks, {report.inline_tasks} inline kernels)"
    ]
    for name in BUCKET_NAMES:
        v = report.buckets.get(name, 0.0)
        pct = (v / report.total_s * 100.0) if report.total_s > 0 else 0.0
        bar = "#" * int(round(pct / 4))
        lines.append(f"  {name:<15} {v * 1e3:>9.2f} ms  {pct:>5.1f}%  |{bar}")
    lines.append(
        f"  coverage: {report.coverage * 100.0:.1f}% of measured wall time "
        "in named buckets"
    )
    if report.workers:
        lines.append("per-worker kernel utilization:")
        for pid, s in report.workers.items():
            lines.append(
                f"  pid {pid:<8} {int(s['tasks'])} tasks  "
                f"{s['busy_s'] * 1e3:8.2f} ms busy "
                f"({s['utilization'] * 100.0:5.1f}%)  "
                f"first-task latency {s['first_latency_s'] * 1e3:.2f} ms"
            )
        lines.append(
            f"partition skew (max/mean kernel time per dispatch): "
            f"worst {report.skew_max:.2f}, mean {report.skew_mean:.2f}"
        )
    if report.ipc_result_bytes:
        lines.append(
            f"IPC result payload: {report.ipc_result_bytes} bytes"
        )
    return "\n".join(lines)


# ------------------------------------------------------------ tracer export
def report_tracer(prof: WallProfiler):
    """Rebuild the joined timelines as a recording
    :class:`~repro.obs.tracer.Tracer` (times rebased to the window start,
    in seconds), so ``Tracer.write_chrome`` and the
    :mod:`repro.obs.profiler` speedscope/collapsed writers export
    wall-clock pool traces exactly like simulated ones.

    Tracks: ``main`` (run/fork/submit/wait/merge/inline spans) and one
    ``worker-<pid>`` per pool process (kernel + result-serialize spans).
    """
    from .tracer import Span, Tracer

    report = build_report(prof)
    base = report.t0
    tracer = Tracer()
    next_id = [1]

    def add(name, category, track, lo, hi, parent=None, **attrs):
        if hi <= lo:
            return None
        span = Span(
            span_id=next_id[0], parent_id=parent, name=name,
            category=category, track=track,
            start_s=lo - base, end_s=hi - base, attrs=attrs,
        )
        next_id[0] += 1
        tracer.spans.append(span)
        return span

    for label, t0, t1 in prof.run_spans:
        add(label, "run", "main", t0, t1)
    for t0, t1 in prof.fork_spans:
        add("pool_fork", "fork", "main", t0, t1)
    for kernel, t0, t1, n in prof.inline_spans:
        add(f"{kernel}_inline", "kernel", "main", t0, t1, n_elements=n)
    for d in prof.dispatches:
        root = add(
            f"{d.kernel}_dispatch", "dispatch", "main", d.t0,
            d.t_merge_end or d.t_wait_end or d.t_submit_end,
            tasks=len(d.tasks),
        )
        parent = root.span_id if root is not None else None
        add("submit", "ipc", "main", d.t0, d.t_submit_end, parent)
        add("result_wait", "wait", "main", d.t_submit_end, d.t_wait_end,
            parent)
        add("merge", "merge", "main", d.t_wait_end, d.t_merge_end, parent)
        for t in d.tasks:
            if t.t_kernel_end <= t.t_start:
                continue
            track = f"worker-{t.pid}"
            add(
                d.kernel, "kernel", track, t.t_start, t.t_kernel_end,
                part=t.part, n_elements=t.n_elements, gen=t.gen,
            )
            add("serialize", "ipc", track, t.t_kernel_end, t.t_ret)
    return tracer


# --------------------------------------------------------------- efficiency
def efficiency_table(
    serial_median_s: float, rows: Sequence[Tuple[int, float]]
) -> List[Dict[str, float]]:
    """Speedup/efficiency per worker count against a serial median."""
    out: List[Dict[str, float]] = []
    for workers, median_s in rows:
        speedup = (serial_median_s / median_s) if median_s > 0 else 0.0
        out.append({
            "workers": float(workers),
            "median_s": median_s,
            "speedup": speedup,
            "efficiency": (speedup / workers) if workers > 0 else 0.0,
        })
    return out


def render_efficiency(
    serial_median_s: float, table: Sequence[Dict[str, float]]
) -> str:
    lines = [
        f"{'workers':>8} {'median':>10} {'speedup':>9} {'efficiency':>11}",
        f"{'serial':>8} {serial_median_s * 1e3:>8.1f}ms {'1.00x':>9} "
        f"{'':>11}",
    ]
    for row in table:
        lines.append(
            f"{int(row['workers']):>8} {row['median_s'] * 1e3:>8.1f}ms "
            f"{row['speedup']:>8.2f}x {row['efficiency'] * 100:>10.1f}%"
        )
    return "\n".join(lines)
