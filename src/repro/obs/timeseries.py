"""Ring-buffered time series over the simulated clocks.

The metrics registry (:mod:`repro.obs.metrics`) holds *cumulative* state:
counters only grow, histograms only accumulate.  That answers "how much,
ever", but the runtime signals the query service lives on — queue-wait
percentiles over the last window, shed **rate**, per-server read traffic
— are *windowed* views over simulated time.  A
:class:`TimeSeriesRecorder` keeps one bounded ring buffer of
``(simulated_t, value)`` samples per labeled series and computes
tumbling/sliding window aggregates deterministically from the samples:
same run, same windows, bit for bit.  The wall clock never appears.

Three series kinds, mirroring the registry:

* ``gauge`` — instantaneous samples (queue depth); window aggregates are
  first/last/min/max/mean over the samples inside the window.
* ``counter`` — cumulative samples (a scraped registry counter); the
  window aggregate is the *increase* over the window and its rate.
* ``event`` — one sample per occurrence (a queue wait, a window width);
  aggregates are count/rate/sum/min/max plus p50/p95/p99 computed by
  folding the window's samples through the paper's Algorithm-1
  machinery (:meth:`~repro.histogram.mergeable.MergeableHistogram.quantile`),
  exactly as the engine's own histogram metrics do.

:meth:`TimeSeriesRecorder.scrape` snapshots a whole
:class:`~repro.obs.metrics.MetricsRegistry` at one simulated instant, so
cumulative engine counters become rate-queryable series without touching
the instrumentation sites.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "SERIES_KINDS",
    "Sample",
    "TimeSeries",
    "WindowStats",
    "TimeSeriesRecorder",
]

#: Valid series kinds (see module docstring).
SERIES_KINDS = ("gauge", "counter", "event")

#: Default ring-buffer capacity per labeled series.
DEFAULT_CAPACITY = 4096

#: Label tuple form used as part of a series key: sorted (name, value).
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One recorded observation: a simulated instant and a value."""

    t_s: float
    value: float


@dataclass
class WindowStats:
    """Deterministic aggregates of one series over ``(t_end - width, t_end]``.

    ``count`` is the number of samples inside the window; every other
    field is derived from those samples only.  ``rate`` is per simulated
    second: occurrences/width for events, increase/width for counters.
    Percentiles are ``nan`` for empty windows and for non-event kinds.
    """

    name: str
    labels: Dict[str, str]
    kind: str
    t_start: float
    t_end: float
    count: int = 0
    sum: float = 0.0
    min: float = math.nan
    max: float = math.nan
    first: float = math.nan
    last: float = math.nan
    mean: float = math.nan
    #: Events: count / width.  Counters: (last - first) / width.
    rate: float = 0.0
    #: Counters only: total increase across the window.
    increase: float = 0.0
    p50: float = math.nan
    p95: float = math.nan
    p99: float = math.nan

    @property
    def width_s(self) -> float:
        return self.t_end - self.t_start


class TimeSeries:
    """One labeled series: a bounded, time-ordered ring of samples."""

    __slots__ = ("name", "labels", "kind", "samples", "capacity", "dropped")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        kind: str,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if kind not in SERIES_KINDS:
            raise ValueError(f"unknown series kind {kind!r}; valid: {SERIES_KINDS}")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.labels = dict(labels)
        self.kind = kind
        self.capacity = capacity
        self.samples: Deque[Sample] = deque(maxlen=capacity)
        #: Samples evicted by the ring bound (visible so exports can say
        #: the series is truncated rather than silently partial).
        self.dropped = 0

    def append(self, t_s: float, value: float) -> None:
        if self.samples and t_s < self.samples[-1].t_s:
            raise ValueError(
                f"series {self.name!r}: sample at t={t_s} precedes "
                f"latest t={self.samples[-1].t_s} (simulated time only "
                "moves forward)"
            )
        if len(self.samples) == self.capacity:
            self.dropped += 1
        self.samples.append(Sample(float(t_s), float(value)))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def latest(self) -> Optional[Sample]:
        return self.samples[-1] if self.samples else None

    def in_window(self, t_end: float, width_s: float) -> List[Sample]:
        """Samples with ``t_start < t <= t_end`` where
        ``t_start = t_end - width_s`` (half-open on the left, so tumbling
        windows partition the timeline without double counting)."""
        t_start = t_end - width_s
        return [s for s in self.samples if t_start < s.t_s <= t_end]

    def window(
        self, t_end: float, width_s: float, quantile_bins: int = 64
    ) -> WindowStats:
        """Aggregate this series over ``(t_end - width_s, t_end]``."""
        if width_s <= 0.0:
            raise ValueError("window width must be positive")
        inside = self.in_window(t_end, width_s)
        ws = WindowStats(
            name=self.name,
            labels=dict(self.labels),
            kind=self.kind,
            t_start=t_end - width_s,
            t_end=t_end,
            count=len(inside),
        )
        if not inside:
            return ws
        values = np.array([s.value for s in inside], dtype=np.float64)
        ws.sum = float(values.sum())
        ws.min = float(values.min())
        ws.max = float(values.max())
        ws.first = float(values[0])
        ws.last = float(values[-1])
        ws.mean = ws.sum / ws.count
        if self.kind == "counter":
            # Increase over the window needs the sample just *before* the
            # window when one exists (otherwise the first inside sample is
            # the best available base — a series that started mid-window).
            base = ws.first
            for s in reversed(self.samples):
                if s.t_s <= ws.t_start:
                    base = s.value
                    break
            ws.increase = max(0.0, ws.last - base)
            ws.rate = ws.increase / width_s
        elif self.kind == "event":
            ws.rate = ws.count / width_s
            ws.p50, ws.p95, ws.p99 = _percentiles(
                values, (0.50, 0.95, 0.99), quantile_bins
            )
        return ws

    def tumbling(
        self, t_end: float, width_s: float, n_windows: int
    ) -> List[WindowStats]:
        """The last ``n_windows`` aligned tumbling windows ending at
        ``t_end`` (oldest first)."""
        return [
            self.window(t_end - i * width_s, width_s)
            for i in range(n_windows - 1, -1, -1)
        ]


def _percentiles(
    values: np.ndarray, qs: Tuple[float, ...], n_bins: int
) -> Tuple[float, ...]:
    """Window percentiles via the mergeable power-of-two histogram — the
    same estimator the engine's histogram metrics use, so windowed p99s
    and cumulative p99s agree on identical data."""
    from ..histogram.mergeable import MergeableHistogram

    if values.size == 1:
        v = float(values[0])
        return tuple(v for _ in qs)
    hist = MergeableHistogram.from_data(
        values, n_bins=n_bins, sample_fraction=1.0
    )
    return tuple(hist.quantile(q) for q in qs)


class TimeSeriesRecorder:
    """A namespace of ring-buffered series keyed by ``(name, labels)``.

    Purely passive: recording reads nothing and charges nothing — callers
    pass the simulated instant explicitly, so a recorder can sit behind
    disabled-by-default hooks without perturbing any clock.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._series: Dict[Tuple[str, _LabelKey], TimeSeries] = {}

    # ------------------------------------------------------------- recording
    def record(
        self,
        name: str,
        t_s: float,
        value: float,
        kind: str = "gauge",
        labels: Optional[Dict[str, object]] = None,
        **label_kw: object,
    ) -> None:
        """Append one sample (creating the series on first use).

        Labels come from the ``labels`` dict and/or keyword convenience
        (the dict form exists because a label may legitimately be named
        ``kind``, e.g. the fault-injection counters).  Re-recording an
        existing series with a different ``kind`` is a schema error,
        mirroring the metrics registry's declare-or-fetch.
        """
        merged = {**(labels or {}), **label_kw}
        label_map = {str(k): str(v) for k, v in merged.items()}
        key = (name, _label_key(label_map))
        series = self._series.get(key)
        if series is None:
            series = TimeSeries(name, label_map, kind, capacity=self.capacity)
            self._series[key] = series
        elif series.kind != kind:
            raise ValueError(
                f"series {name!r} is {series.kind!r}, not {kind!r}"
            )
        series.append(t_s, value)

    def observe(self, name: str, t_s: float, value: float, **labels: object) -> None:
        """Record one occurrence (``event`` kind)."""
        self.record(name, t_s, value, kind="event", **labels)

    def scrape(self, registry, t_s: float, prefix: str = "") -> int:
        """Snapshot every flat sample of a metrics registry at ``t_s``.

        Counters (including histogram ``_count``/``_sum``/``_bucket``
        components) become ``counter`` series; gauges become ``gauge``
        series.  Returns the number of samples recorded.  Scraping only
        *reads* the registry — cumulative state is untouched.
        """
        n = 0
        for name, kind, labels, value in registry.collect():
            self.record(
                prefix + name,
                t_s,
                value,
                kind="gauge" if kind == "gauge" else "counter",
                labels=labels,
            )
            n += 1
        return n

    # ------------------------------------------------------------ inspection
    def series(
        self,
        name: str,
        labels: Optional[Dict[str, object]] = None,
        **label_kw: object,
    ) -> Optional[TimeSeries]:
        merged = {**(labels or {}), **label_kw}
        key = (name, _label_key({str(k): str(v) for k, v in merged.items()}))
        return self._series.get(key)

    def all_series(self) -> Iterator[TimeSeries]:
        """Every series, sorted by (name, labels) for deterministic
        iteration."""
        for key in sorted(self._series):
            yield self._series[key]

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._series})

    def window(
        self,
        name: str,
        t_end: float,
        width_s: float,
        labels: Optional[Dict[str, object]] = None,
        **label_kw: object,
    ) -> WindowStats:
        """Aggregate one series over a sliding window; an empty
        :class:`WindowStats` when the series does not exist."""
        merged = {**(labels or {}), **label_kw}
        series = self.series(name, labels=merged)
        if series is None:
            return WindowStats(
                name=name,
                labels={str(k): str(v) for k, v in merged.items()},
                kind="event",
                t_start=t_end - width_s,
                t_end=t_end,
            )
        return series.window(t_end, width_s)

    def total_samples(self) -> int:
        return sum(len(s) for s in self._series.values())

    @property
    def t_latest(self) -> float:
        """Latest simulated instant across every series (0.0 when empty)."""
        latest = 0.0
        for s in self._series.values():
            if s.samples:
                latest = max(latest, s.samples[-1].t_s)
        return latest

    # ---------------------------------------------------------------- export
    def to_jsonl_records(self) -> List[Dict]:
        """One record per series: schema + the ring's samples, in
        deterministic order — the offline-analysis twin of the tracer's
        JSONL log."""
        records: List[Dict] = []
        for series in self.all_series():
            records.append(
                {
                    "type": "series",
                    "name": series.name,
                    "labels": dict(sorted(series.labels.items())),
                    "kind": series.kind,
                    "dropped": series.dropped,
                    "samples": [[s.t_s, s.value] for s in series.samples],
                }
            )
        return records

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            for rec in self.to_jsonl_records():
                f.write(json.dumps(rec, sort_keys=True) + "\n")

    @classmethod
    def from_jsonl_records(cls, records: List[Dict]) -> "TimeSeriesRecorder":
        rec = cls()
        for r in records:
            if r.get("type") != "series":
                continue
            series = TimeSeries(
                r["name"], dict(r.get("labels") or {}), r["kind"],
                capacity=max(rec.capacity, len(r["samples"]) or 1),
            )
            for t_s, value in r["samples"]:
                series.append(t_s, value)
            series.dropped = int(r.get("dropped", 0))
            rec._series[(series.name, _label_key(series.labels))] = series
        return rec

    @classmethod
    def read_jsonl(cls, path: str) -> "TimeSeriesRecorder":
        with open(path, "r", encoding="utf-8") as f:
            records = [json.loads(line) for line in f if line.strip()]
        return cls.from_jsonl_records(records)
