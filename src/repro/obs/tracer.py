"""Per-query distributed tracing over the simulated clocks.

A :class:`Tracer` records hierarchical :class:`Span` s.  Every span is
bound to one :class:`~repro.storage.costmodel.SimClock` — its start/end
instants are read from that clock, so a trace is a faithful timeline of
the cost model: a span over a server's PFS read covers exactly the
simulated seconds the read charged.  Tracks (Chrome "threads") are the
clock names (``client``, ``server0`` ...), which makes a Perfetto load of
the export look like the per-rank timelines the paper's figures discuss.

Parenting follows *call order*, not clocks: a per-server read span opened
while a client-side conjunct span is active becomes its child even though
the two live on different tracks.  Within one track spans nest properly in
time (clocks only move forward), which is what the Chrome ``X`` events
rely on.

The default tracer everywhere is :data:`NOOP_TRACER`; it records nothing,
charges nothing, and costs two attribute reads per instrumentation site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..storage.costmodel import SimClock

__all__ = ["Span", "Tracer", "NoopTracer", "NOOP_TRACER"]


@dataclass
class Span:
    """One traced operation on one simulated clock."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    #: Clock name this span is timed against (Chrome tid).
    track: str
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Simulated seconds covered (0.0 while still open)."""
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0


class _SpanHandle:
    """Context manager for one open span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, **attrs: Any) -> "_SpanHandle":
        """Attach attributes to the span (visible in both exports)."""
        self.span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.span)


class _NoopSpan:
    """Stateless stand-in for a span when tracing is disabled."""

    __slots__ = ()
    span = None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled tracer: every operation is a no-op.

    ``enabled`` is False so hot loops can skip building span attributes
    entirely.  Safe to share across systems and threads (stateless).
    """

    enabled = False

    def span(self, name: str, clock: Optional[SimClock] = None,
             category: str = "query", **attrs: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def instant(self, name: str, clock: Optional[SimClock] = None,
                category: str = "event", **attrs: Any) -> None:
        return None


#: The process-wide disabled tracer (the default on every PDCSystem).
NOOP_TRACER = NoopTracer()


class Tracer:
    """Recording tracer: collects spans and instant events.

    One tracer instance is scoped however the caller likes — typically one
    per captured workload.  It never charges simulated time; it only
    *reads* ``clock.now`` at span open/close.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.events: List[Span] = []
        self._next_id = 1
        #: Call-order stack of open spans (logical parenting).
        self._open: List[Span] = []

    # ------------------------------------------------------------- recording
    def span(self, name: str, clock: Optional[SimClock] = None,
             category: str = "query", **attrs: Any) -> _SpanHandle:
        """Open a span timed on ``clock`` (or the parent's clock time when
        omitted); use as a context manager."""
        start = clock.now if clock is not None else (
            self._open[-1].start_s if self._open else 0.0
        )
        sp = Span(
            span_id=self._next_id,
            parent_id=self._open[-1].span_id if self._open else None,
            name=name,
            category=category,
            track=clock.name if clock is not None else
                  (self._open[-1].track if self._open else "client"),
            start_s=start,
            attrs=dict(attrs) if attrs else {},
        )
        # Bind the closing clock so _close can read the end instant.
        sp.attrs["__clock"] = clock
        self._next_id += 1
        self.spans.append(sp)
        self._open.append(sp)
        return _SpanHandle(self, sp)

    def _close(self, span: Span) -> None:
        clock = span.attrs.pop("__clock", None)
        span.end_s = clock.now if clock is not None else span.start_s
        # Close out-of-order defensively (exceptions unwinding).
        if self._open and self._open[-1] is span:
            self._open.pop()
        elif span in self._open:
            self._open.remove(span)

    def instant(self, name: str, clock: Optional[SimClock] = None,
                category: str = "event", **attrs: Any) -> None:
        """Record a point-in-time event."""
        t = clock.now if clock is not None else 0.0
        self.events.append(
            Span(
                span_id=self._next_id,
                parent_id=self._open[-1].span_id if self._open else None,
                name=name,
                category=category,
                track=clock.name if clock is not None else "client",
                start_s=t,
                end_s=t,
                attrs=dict(attrs),
            )
        )
        self._next_id += 1

    def reset(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._open.clear()
        self._next_id = 1

    # ------------------------------------------------------------- inspection
    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def subtree(self, root: Span) -> List[Span]:
        """``root`` plus all descendants, in recording order."""
        keep = {root.span_id}
        out = [root]
        for s in self.spans:
            if s.parent_id in keep:
                keep.add(s.span_id)
                out.append(s)
        return out

    def summary(self, root: Optional[Span] = None) -> Dict[str, float]:
        """Simulated seconds per span category (over ``root``'s subtree, or
        everything).  Categories overlap hierarchically — a ``query`` span
        covers its ``storage_read`` children — so values are per-category
        totals, not a partition.  Within one category there is no double
        counting: a span nested (directly or transitively) under a
        same-category span is already covered by that ancestor's duration
        and contributes nothing of its own."""
        spans = self.subtree(root) if root is not None else self.spans
        by_id = {s.span_id: s for s in spans}
        out: Dict[str, float] = {}
        for s in spans:
            if s.end_s is None:
                continue
            parent = by_id.get(s.parent_id) if s.parent_id is not None else None
            shadowed = False
            while parent is not None:
                if parent.category == s.category:
                    shadowed = True
                    break
                parent = (
                    by_id.get(parent.parent_id)
                    if parent.parent_id is not None else None
                )
            if not shadowed:
                out[s.category] = out.get(s.category, 0.0) + s.duration_s
        return out

    # ---------------------------------------------------------------- export
    def _public_attrs(self, span: Span) -> Dict[str, Any]:
        return {k: v for k, v in span.attrs.items() if not k.startswith("__")}

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON object (Perfetto/``chrome://tracing``
        compatible): complete ``X`` events, one tid per simulated clock."""
        tids: Dict[str, int] = {}

        def tid_of(track: str) -> int:
            if track not in tids:
                tids[track] = len(tids)
            return tids[track]

        events: List[Dict[str, Any]] = []
        for s in self.spans:
            if s.end_s is None:
                continue
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": s.start_s * 1e6,
                    "dur": max(0.0, s.duration_s) * 1e6,
                    "pid": 0,
                    "tid": tid_of(s.track),
                    "args": self._public_attrs(s),
                }
            )
        for e in self.events:
            events.append(
                {
                    "name": e.name,
                    "cat": e.category,
                    "ph": "i",
                    "s": "t",
                    "ts": e.start_s * 1e6,
                    "pid": 0,
                    "tid": tid_of(e.track),
                    "args": self._public_attrs(e),
                }
            )
        meta: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "args": {"name": "pdc-sim"},
            }
        ]
        for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_chrome_trace(), f)

    def to_jsonl_records(self) -> List[Dict[str, Any]]:
        """Structured-event log records (one dict per span/event)."""
        records: List[Dict[str, Any]] = []
        for s in self.spans:
            records.append(
                {
                    "type": "span",
                    "id": s.span_id,
                    "parent": s.parent_id,
                    "name": s.name,
                    "cat": s.category,
                    "track": s.track,
                    "t0": s.start_s,
                    "t1": s.end_s,
                    "attrs": self._public_attrs(s),
                }
            )
        for e in self.events:
            records.append(
                {
                    "type": "event",
                    "id": e.span_id,
                    "parent": e.parent_id,
                    "name": e.name,
                    "cat": e.category,
                    "track": e.track,
                    "t": e.start_s,
                    "attrs": self._public_attrs(e),
                }
            )
        return records

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            for rec in self.to_jsonl_records():
                f.write(json.dumps(rec) + "\n")

    # ---------------------------------------------------------------- import
    @classmethod
    def from_jsonl_records(cls, records: List[Dict[str, Any]]) -> "Tracer":
        """Rebuild a tracer from :meth:`to_jsonl_records` output, so saved
        traces can be profiled/summarized offline (`repro.obs.profiler`
        works on loaded traces exactly as on live ones)."""
        tracer = cls()
        max_id = 0
        for rec in records:
            span = Span(
                span_id=int(rec["id"]),
                parent_id=rec["parent"],
                name=rec["name"],
                category=rec["cat"],
                track=rec["track"],
                start_s=rec["t0"] if rec["type"] == "span" else rec["t"],
                end_s=rec["t1"] if rec["type"] == "span" else rec["t"],
                attrs=dict(rec.get("attrs") or {}),
            )
            if rec["type"] == "span":
                tracer.spans.append(span)
            else:
                tracer.events.append(span)
            max_id = max(max_id, span.span_id)
        tracer._next_id = max_id + 1
        return tracer

    @classmethod
    def read_jsonl(cls, path: str) -> "Tracer":
        """Load a trace written by :meth:`write_jsonl`."""
        with open(path, "r", encoding="utf-8") as f:
            records = [json.loads(line) for line in f if line.strip()]
        return cls.from_jsonl_records(records)
