"""Critical-path and skew profiling over recorded traces.

The paper's parallel-query evaluation (§V–§VI) lives and dies on load
balance: 64–512 servers scan their region shares in parallel, so the
query is as fast as its *slowest* server, and Fig. 6's scaling flattens
exactly when per-server work stops shrinking.  This module turns a
:class:`~repro.obs.tracer.Tracer` span tree into the three diagnostics a
parallel query service needs (cf. Nieto-Santisteban et al., when "the
whole is slower than its parts"):

* **utilization** — per-clock (client/serverN) busy time as a union of
  span intervals, against the trace's wall window;
* **skew** — the imbalance ratio (max server busy / mean server busy)
  and a straggler ranking, the direct cause of flat scaling curves;
* **critical path** — the chain of spans that bounds end-to-end latency
  (greedy descent into the last-ending child), i.e. what to optimize
  first.

Flamegraph export comes in both lingua francas: collapsed stacks
(``a;b;c value`` — Brendan Gregg's ``flamegraph.pl`` and most viewers)
and `speedscope <https://www.speedscope.app>`_ evented JSON.

Everything here is pure post-processing of recorded spans: profiling a
trace never touches a clock, so the PR-1 zero-cost invariant holds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .tracer import Span, Tracer

__all__ = [
    "TrackStats",
    "ProfileReport",
    "busy_union",
    "profile",
    "render_profile",
    "to_collapsed",
    "write_collapsed",
    "to_speedscope",
    "write_speedscope",
]


@dataclass
class TrackStats:
    """One simulated clock's (track's) share of the trace."""

    track: str
    #: Union of this track's span intervals (overlaps counted once).
    busy_s: float
    #: busy_s / the trace's wall window (0 when the window is empty).
    utilization: float
    spans: int


@dataclass
class ProfileReport:
    """What :func:`profile` computes from one span (sub)tree."""

    #: Trace window: earliest span start / latest span end.
    t_start: float
    t_end: float
    span_count: int
    tracks: List[TrackStats] = field(default_factory=list)
    #: max server busy / mean server busy (1.0 = perfectly balanced;
    #: 0.0 when no server track recorded any span).
    imbalance_ratio: float = 0.0
    #: Server tracks ranked by busy time, slowest first.
    stragglers: List[TrackStats] = field(default_factory=list)
    #: Root-to-leaf span chain bounding end-to-end latency.
    critical_path: List[Span] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        return max(0.0, self.t_end - self.t_start)

    @property
    def critical_path_s(self) -> float:
        if not self.critical_path:
            return 0.0
        return self.critical_path[-1].end_s - self.critical_path[0].start_s


def _closed_spans(tracer: Tracer, root: Optional[Span]) -> List[Span]:
    spans = tracer.subtree(root) if root is not None else tracer.spans
    return [s for s in spans if s.end_s is not None]


def busy_union(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by the intervals, overlaps counted once.

    Public because the wall-clock layer (:mod:`repro.obs.walltime`) uses
    the same busy-time notion for per-worker pool utilization that this
    module uses for per-clock simulated utilization.
    """
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_lo, cur_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    return total + (cur_hi - cur_lo)


#: Backwards-compatible private alias (pre-walltime callers).
_busy_union = busy_union


def profile(tracer: Tracer, root: Optional[Span] = None) -> ProfileReport:
    """Compute utilization, skew, and the critical path of a trace.

    ``root`` restricts the analysis to one span's subtree (e.g. a single
    query of a longer workload); by default the whole trace is profiled.
    """
    spans = _closed_spans(tracer, root)
    if not spans:
        return ProfileReport(t_start=0.0, t_end=0.0, span_count=0)
    t_start = min(s.start_s for s in spans)
    t_end = max(s.end_s for s in spans)
    wall = max(0.0, t_end - t_start)

    by_track: Dict[str, List[Span]] = {}
    for s in spans:
        by_track.setdefault(s.track, []).append(s)
    tracks = []
    for name in sorted(by_track):
        members = by_track[name]
        busy = _busy_union([(s.start_s, s.end_s) for s in members])
        tracks.append(TrackStats(
            track=name,
            busy_s=busy,
            utilization=(busy / wall) if wall > 0 else 0.0,
            spans=len(members),
        ))

    servers = [t for t in tracks if t.track.startswith("server")]
    imbalance = 0.0
    if servers:
        mean_busy = sum(t.busy_s for t in servers) / len(servers)
        if mean_busy > 0:
            imbalance = max(t.busy_s for t in servers) / mean_busy
    stragglers = sorted(servers, key=lambda t: -t.busy_s)

    return ProfileReport(
        t_start=t_start,
        t_end=t_end,
        span_count=len(spans),
        tracks=tracks,
        imbalance_ratio=imbalance,
        stragglers=stragglers,
        critical_path=_critical_path(spans, root),
    )


def _critical_path(spans: Sequence[Span], root: Optional[Span]) -> List[Span]:
    """Greedy last-ending-child descent from the root span.

    The chain whose tail determines when each level finishes: at every
    node, the child that ends last is what the parent (a barrier over its
    children) waited for.
    """
    children: Dict[int, List[Span]] = {}
    ids = {s.span_id for s in spans}
    roots: List[Span] = []
    for s in spans:
        if s.parent_id is not None and s.parent_id in ids and (
            root is None or s.span_id != root.span_id
        ):
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)
    if root is not None:
        cur: Optional[Span] = root if root.end_s is not None else None
    else:
        cur = max(roots, key=lambda s: s.end_s, default=None)
    path: List[Span] = []
    while cur is not None:
        path.append(cur)
        kids = children.get(cur.span_id)
        cur = max(kids, key=lambda s: s.end_s) if kids else None
    return path


def render_profile(report: ProfileReport, top: int = 8) -> str:
    """Human-readable profile: utilization bars, skew, critical path."""
    lines = [
        f"trace window: {report.wall_s * 1e3:.3f} simulated ms, "
        f"{report.span_count} spans"
    ]
    lines.append("per-clock utilization:")
    for t in report.tracks:
        bar = "#" * int(round(t.utilization * 40))
        lines.append(
            f"  {t.track:<10} {t.busy_s * 1e3:9.3f} ms "
            f"{t.utilization * 100:6.1f}%  |{bar:<40}| ({t.spans} spans)"
        )
    if report.stragglers:
        lines.append(
            f"server imbalance ratio (max/mean busy): "
            f"{report.imbalance_ratio:.3f}"
        )
        lines.append("straggler ranking (slowest first):")
        for rank, t in enumerate(report.stragglers[:top], 1):
            lines.append(
                f"  {rank}. {t.track:<10} {t.busy_s * 1e3:9.3f} ms busy"
            )
    if report.critical_path:
        lines.append(
            f"critical path ({report.critical_path_s * 1e3:.3f} ms):"
        )
        for depth, s in enumerate(report.critical_path):
            lines.append(
                f"  {'  ' * depth}{s.name} [{s.track}] "
                f"{s.duration_s * 1e3:.3f} ms"
            )
    return "\n".join(lines)


# ------------------------------------------------------------- flamegraphs
def to_collapsed(tracer: Tracer, root: Optional[Span] = None) -> List[str]:
    """Collapsed-stack lines (``parent;child;leaf value``), value in
    integer simulated microseconds of *self* time — feed straight into
    ``flamegraph.pl`` or any collapsed-stack viewer."""
    spans = _closed_spans(tracer, root)
    by_id = {s.span_id: s for s in spans}
    child_time: Dict[int, float] = {}
    for s in spans:
        if s.parent_id in by_id:
            child_time[s.parent_id] = child_time.get(s.parent_id, 0.0) + s.duration_s

    weights: Dict[str, int] = {}
    for s in spans:
        names = [s.name]
        cur = s
        while cur.parent_id in by_id:
            cur = by_id[cur.parent_id]
            names.append(cur.name)
        stack = ";".join(reversed(names))
        self_s = max(0.0, s.duration_s - child_time.get(s.span_id, 0.0))
        weights[stack] = weights.get(stack, 0) + int(round(self_s * 1e6))
    return [f"{stack} {value}" for stack, value in sorted(weights.items()) if value > 0]


def write_collapsed(tracer: Tracer, path: str, root: Optional[Span] = None) -> None:
    with open(path, "w", encoding="utf-8") as f:
        for line in to_collapsed(tracer, root):
            f.write(line + "\n")


def to_speedscope(
    tracer: Tracer, root: Optional[Span] = None, name: str = "pdc-sim"
) -> Dict[str, Any]:
    """`speedscope <https://www.speedscope.app>`_ evented-format JSON:
    one profile per track (simulated clock), frames shared.  Within one
    track spans nest properly in time (clocks only move forward), which
    is exactly the open/close nesting the format requires."""
    spans = _closed_spans(tracer, root)
    frames: List[Dict[str, str]] = []
    frame_of: Dict[str, int] = {}

    def frame(nm: str) -> int:
        if nm not in frame_of:
            frame_of[nm] = len(frames)
            frames.append({"name": nm})
        return frame_of[nm]

    by_track: Dict[str, List[Span]] = {}
    for s in spans:
        by_track.setdefault(s.track, []).append(s)

    profiles = []
    for track in sorted(by_track):
        members = sorted(
            by_track[track], key=lambda s: (s.start_s, -(s.end_s - s.start_s))
        )
        events: List[Dict[str, Any]] = []
        stack: List[Span] = []
        for s in members:
            while stack and stack[-1].end_s <= s.start_s:
                done = stack.pop()
                events.append(
                    {"type": "C", "frame": frame(done.name), "at": done.end_s}
                )
            stack.append(s)
            events.append({"type": "O", "frame": frame(s.name), "at": s.start_s})
        while stack:
            done = stack.pop()
            events.append({"type": "C", "frame": frame(done.name), "at": done.end_s})
        t0 = min(s.start_s for s in members)
        t1 = max(s.end_s for s in members)
        profiles.append(
            {
                "type": "evented",
                "name": track,
                "unit": "seconds",
                "startValue": t0,
                "endValue": t1,
                "events": events,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": profiles,
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.obs.profiler",
    }


def write_speedscope(
    tracer: Tracer, path: str, root: Optional[Span] = None, name: str = "pdc-sim"
) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(to_speedscope(tracer, root, name=name), f)
