"""Continuous bench-regression gate: a deterministic micro-suite with
``BENCH_*.json`` baselines.

Every number the simulator produces is *simulated* time, so benchmark
results are exactly reproducible: the same code must yield bit-identical
metrics on every machine and every run.  That turns performance testing
into regression pinning — a committed ``BENCH_*.json`` baseline plus a
comparison with per-metric tolerances (default: exact, ~1e-9 relative,
catching any drift in the cost model or evaluation order).  Intentional
performance changes update the baseline explicitly
(``python -m repro benchcheck --update``), which shows up in review as a
diff of numbers — the BENCH trajectory the roadmap calls for.

The micro-suite covers each access path of the demo deployment (all four
strategies + AUTO), a shared-scan batch window, and a ``get_data``
materialization; one run takes well under a second.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_TOLERANCES",
    "DEFAULT_WALLCLOCK_BASELINE",
    "DEFAULT_WALLCLOCK_TOLERANCE",
    "MetricCheck",
    "demo_deployment",
    "run_micro_suite",
    "run_wallclock_suite",
    "render_wallclock",
    "machine_tag",
    "measure_trials",
    "summarize_trials",
    "write_wallclock_baseline",
    "load_wallclock_baseline",
    "gate_wallclock",
    "load_baseline",
    "write_baseline",
    "compare",
    "render_comparison",
    "benchcheck",
]

#: Canonical committed baseline (repo root), the first entry of the
#: BENCH trajectory.
DEFAULT_BASELINE = "BENCH_microsuite.json"

#: Per-metric relative tolerances, first matching ``fnmatch`` pattern
#: wins.  The default pin is (near-)exact: simulated numbers are
#: deterministic, so any drift is a behavior change that must be either
#: fixed or explicitly re-baselined.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "*": 1e-9,
}


def demo_deployment(metrics=None):
    """The small two-object deployment shared by selftest/trace/metrics
    and the micro-suite: an indexed, replica-backed 4-server system plus
    the demo condition tree and its ground-truth hit count."""
    import numpy as np

    from ..pdc import PDCConfig, PDCSystem
    from ..query.ast import Condition, combine_and
    from ..types import PDCType, QueryOp

    rng = np.random.default_rng(0)
    system = PDCSystem(
        PDCConfig(n_servers=4, region_size_bytes=1 << 13), metrics=metrics
    )
    n = 1 << 14
    e = rng.gamma(2.0, 0.7, n).astype(np.float32)
    x = (rng.random(n) * 300).astype(np.float32)
    system.create_object("energy", e)
    system.create_object("x", x)
    system.build_index("energy")
    system.build_index("x")
    system.build_sorted_replica("energy", ["x"])

    node = combine_and(
        Condition("energy", QueryOp.GT, PDCType.FLOAT, 2.0),
        Condition("x", QueryOp.LT, PDCType.FLOAT, 150.0),
    )
    truth = int(((e > 2.0) & (x < 150.0)).sum())
    return system, node, truth


def run_micro_suite(workers: int = 0) -> Dict[str, float]:
    """Run the deterministic micro-suite; returns metric name → value.

    Each strategy runs on a fresh deployment (cold caches) so the
    per-strategy numbers are independent of suite ordering.

    ``workers > 1`` runs the query/batch/get_data/ingest legs through the
    real-parallel runtime (:mod:`repro.query.parallel`); every metric is
    guaranteed bit-identical to the serial suite — the determinism tests
    pin ``run_micro_suite() == run_micro_suite(workers=N)`` exactly.
    (The service/monitor legs build their engines internally and always
    run serially here.)
    """
    from ..query.ast import Condition
    from ..query.executor import QueryEngine
    from ..query.scheduler import QueryScheduler
    from ..strategies import Strategy
    from ..types import PDCType, QueryOp

    out: Dict[str, float] = {}

    for strategy in Strategy:
        system, node, truth = demo_deployment()
        with QueryEngine(system, workers=workers) as engine:
            res = engine.execute(node, strategy=strategy)
        tag = strategy.name.lower()
        out[f"query.{tag}.sim_seconds"] = res.elapsed_s
        out[f"query.{tag}.nhits"] = float(res.nhits)
        out[f"query.{tag}.bytes_virtual"] = res.bytes_read_virtual
        out[f"query.{tag}.regions_read"] = float(res.regions_read)

    # Shared-scan batch window over overlapping threshold queries.
    system, node, truth = demo_deployment()
    queries = [
        Condition("energy", QueryOp.GT, PDCType.FLOAT, t)
        for t in (0.5, 1.0, 1.5, 2.0)
    ]
    sched = QueryScheduler(system, max_width=len(queries), workers=workers)
    sched.run(queries)
    batch = sched.batches[0]
    sched.close()
    out["batch.sim_seconds"] = batch.elapsed_s
    out["batch.shared_bytes_virtual"] = batch.shared_bytes_virtual
    out["batch.saved_bytes_virtual"] = batch.saved_bytes_virtual
    out["batch.shared_reads"] = float(batch.shared_reads)

    # Value materialization on both get_data paths.
    system, node, truth = demo_deployment()
    with QueryEngine(system, workers=workers) as engine:
        res = engine.execute(node, strategy=Strategy.SORT_HIST)
        gd = engine.get_data(res.selection, "x", strategy=Strategy.SORT_HIST)
        out["get_data.replica.sim_seconds"] = gd.elapsed_s
        gd = engine.get_data(res.selection, "x", strategy=Strategy.HISTOGRAM)
        out["get_data.original.sim_seconds"] = gd.elapsed_s
        out["get_data.original.bytes_virtual"] = gd.bytes_read_virtual

    # Multi-tenant service queueing under a fixed open-loop arrival
    # pattern: WFQ dispatch shares, queue waits, sheds, and rejections
    # are all simulated-deterministic, so they pin like any cost number.
    from ..service import QueryService, ServiceConfig, Tenant

    system, node, truth = demo_deployment()
    cfg = ServiceConfig(
        tenants=(
            Tenant("heavy", weight=3.0),
            Tenant("light", weight=1.0, queue_deadline_s=0.004),
            Tenant("limited", rate_limit_qps=400.0, burst=2.0, queue_cap=4),
        ),
        policy="wfq",
        batch_window=2,
    )
    svc = QueryService(system, cfg)
    t0 = max(c.now for c in system.all_clocks())
    tenants = ("heavy", "heavy", "light", "heavy", "limited", "limited")
    thresholds = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
    tickets = [
        svc.submit(
            tenants[i % len(tenants)],
            Condition("energy", QueryOp.GT, PDCType.FLOAT,
                      thresholds[i % len(thresholds)]),
            arrival_s=t0 + 5e-4 * i,
        )
        for i in range(18)
    ]
    svc.drain()
    svc.close()
    out["service.served"] = float(sum(t.status == "done" for t in tickets))
    out["service.shed"] = float(sum(t.status == "shed" for t in tickets))
    out["service.rejected"] = float(
        sum(t.status == "rejected" for t in tickets)
    )
    out["service.queue_wait_sim_seconds"] = sum(
        t.queue_wait_s for t in tickets if t.queue_wait_s is not None
    )
    out["service.heavy.dispatched"] = float(svc.stats["heavy"].dispatched)
    out["service.light.dispatched"] = float(svc.stats["light"].dispatched)
    out["service.max_queue_wait_sim_seconds"] = max(
        s.queue_wait_max_s for s in svc.stats.values()
    )

    # Continuous-ingest pins: a fixed epoch-batched write stream in delta
    # maintenance mode.  The maintenance decisions (merge vs rebuild vs
    # rescan), compaction instants, and every simulated charge are pure
    # functions of the op stream, so the counters and the post-ingest
    # query pin exactly.  A drift here means the incremental-maintenance
    # or compaction policy changed.
    import numpy as np

    from ..ingest import IngestConfig, IngestStream

    system, node, truth = demo_deployment()
    obj = system.objects["energy"]
    wrng = np.random.default_rng(3)
    stream = IngestStream(
        system,
        IngestConfig(
            epoch_interval_s=0.002,
            maintenance="delta",
            histogram_rebuild_fraction=0.5,
            index_compact_fraction=0.05,
        ),
    )
    t0 = max(c.now for c in system.all_clocks())
    ingest_start = t0
    for i in range(24):
        t_i = t0 + 2.5e-4 * i
        if i % 6 == 5:
            # Appends grow both query operands in lockstep (conjunct
            # evaluation requires shared dimensions).
            stream.append(
                "energy",
                wrng.gamma(2.0, 0.7, 256).astype(np.float32),
                t_s=t_i,
            )
            stream.append(
                "x",
                (wrng.random(256) * 300).astype(np.float32),
                t_s=t_i,
            )
        else:
            offset = (i * 611) % (obj.n_elements - 64)
            stream.update(
                "energy",
                offset,
                wrng.gamma(2.0, 0.7, 64).astype(np.float32),
                t_s=t_i,
            )
        stream.advance_to(t_i)
    stream.flush()
    totals = stream.totals()
    out["ingest.epochs"] = totals["epochs"]
    out["ingest.elements"] = totals["elements"]
    out["ingest.hist_merges"] = totals["hist_merges"]
    out["ingest.hist_rebuilds"] = totals["hist_rebuilds"]
    out["ingest.minmax_rescans"] = totals["minmax_rescans"]
    out["ingest.index_delta_appends"] = totals["index_delta_appends"]
    out["ingest.compactions"] = totals["compactions"]
    out["ingest.max_lag_sim_seconds"] = totals["max_lag_s"]
    out["ingest.sim_seconds"] = (
        max(c.now for c in system.all_clocks()) - ingest_start
    )
    with QueryEngine(system, workers=workers) as engine:
        res = engine.execute(node)
    out["ingest.post_query.nhits"] = float(res.nhits)
    out["ingest.post_query.sim_seconds"] = res.elapsed_s

    # Continuous-telemetry pins: the demo overload scenario's alert
    # stream is simulated-deterministic, so the burn-rate monitor's
    # fire/clear instants, sample volume, and per-tenant tail waits pin
    # exactly like any cost number.  A drift here means either the
    # service's simulated decisions or the monitor's evaluation changed.
    from .monitor import demo_monitor_run

    mrun = demo_monitor_run(requests=90)
    out["monitor.alerts"] = float(len(mrun.alerts))
    fast = [a for a in mrun.alerts if a.window == "fast"]
    out["monitor.fast_fire_sim_seconds"] = next(
        (a.t_s for a in fast if a.kind == "fire"), 0.0
    )
    out["monitor.fast_clear_sim_seconds"] = next(
        (a.t_s for a in fast if a.kind == "clear"), 0.0
    )
    out["monitor.samples"] = float(mrun.monitor.recorder.total_samples())
    out["monitor.shed"] = float(
        sum(s.shed for s in mrun.service.stats.values())
    )
    out["monitor.bursty.p99_queue_wait_sim_seconds"] = (
        mrun.service.stats["bursty"].p99_queue_wait_s
    )

    # Elastic-cluster pins: the load-doubling scenario's membership
    # events, copy-then-commit migrations, and autoscaler decisions are
    # all pure functions of the simulated event stream, so the fleet
    # trajectory and per-phase tail waits pin exactly.  A drift here
    # means the rebalancer's migration charging, the membership
    # transitions, or the hysteresis controller changed.  (Like the
    # service/monitor legs, this one builds its engine internally and
    # runs serially regardless of ``workers``.)
    from ..cluster.demo import demo_cluster_run

    crun = demo_cluster_run(requests=120)
    out["cluster.scale_out"] = float(
        sum(1 for d in crun.autoscaler.decisions if d.action == "scale_out")
    )
    out["cluster.scale_in"] = float(
        sum(1 for d in crun.autoscaler.decisions if d.action == "scale_in")
    )
    out["cluster.servers_after"] = float(crun.servers_after)
    out["cluster.membership_events"] = float(
        len(crun.system.membership.events)
    )
    out["cluster.migrations"] = float(len(crun.manager.to_records()))
    out["cluster.moved_bytes_virtual"] = float(
        sum(r["moved_vbytes"] for r in crun.manager.to_records())
    )
    out["cluster.p99_pre_sim_seconds"] = crun.p99_pre_s
    out["cluster.p99_recovered_sim_seconds"] = crun.p99_recovered_s
    out["cluster.sim_seconds"] = crun.t_end

    return out


# ---------------------------------------------------------------- wall clock
#
# Wall time is the one number the simulator cannot pin, so its gate is
# *statistical*, not exact: k repeated trials (a warm-up excluded),
# summarized as median + MAD, compared against a machine-tagged baseline
# (``BENCH_wallclock.json``) with relative tolerance bands that only
# WARN.  Hard failure is reserved for the two things that are never
# noise: the serial-vs-pool correctness fingerprint, and a configured
# ``min_speedup`` floor.

#: Canonical committed wall-clock baseline (repo root).  Machine-tagged:
#: compared only on the machine that wrote it, skipped (with an explicit
#: notice) everywhere else.
DEFAULT_WALLCLOCK_BASELINE = "BENCH_wallclock.json"

#: Relative band around the baseline medians; out-of-band is a warning,
#: never a failure (shared runners are noisy).
DEFAULT_WALLCLOCK_TOLERANCE = 0.25


def machine_tag() -> Dict[str, object]:
    """The identity a wall-clock baseline is valid for.  Timings from a
    different host/CPU are incomparable, so the gate matches this tag
    exactly and skips the statistical comparison on mismatch."""
    import platform
    import socket

    return {
        "hostname": socket.gethostname(),
        "cpu_count": int(os.cpu_count() or 1),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def measure_trials(
    fn,
    trials: int = 3,
    warmup: int = 1,
    timer=None,
) -> Dict[str, List[float]]:
    """Time ``fn()`` ``warmup + trials`` times on ``timer`` (injectable;
    default ``time.perf_counter``).

    The warm-up runs are *measured but excluded* from the statistics —
    they absorb pool fork, page faults, and cache warm-up, and are
    reported separately so that cost stays visible.
    """
    import time

    timer = timer or time.perf_counter
    warm: List[float] = []
    runs: List[float] = []
    for _ in range(max(0, warmup)):
        t0 = timer()
        fn()
        warm.append(timer() - t0)
    for _ in range(max(1, trials)):
        t0 = timer()
        fn()
        runs.append(timer() - t0)
    return {"warmup_s": warm, "trials_s": runs}


def summarize_trials(trials_s: List[float]) -> Dict[str, float]:
    """Median + MAD (median absolute deviation): robust against the
    one-sided outliers wall timings actually produce (GC pauses, CI
    neighbors), unlike mean + stddev."""
    if not trials_s:
        return {"median_s": 0.0, "mad_s": 0.0}
    ordered = sorted(trials_s)
    n = len(ordered)
    mid = n // 2
    median = (
        ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
    )
    devs = sorted(abs(v - median) for v in ordered)
    mad = devs[mid] if n % 2 else 0.5 * (devs[mid - 1] + devs[mid])
    return {"median_s": median, "mad_s": mad}


def run_wallclock_suite(
    workers: int = 0,
    elements: int = 1 << 22,
    queries: int = 8,
    repeats: int = 2,
    trials: int = 3,
    warmup: int = 1,
    profile: bool = False,
    timer=None,
    trace_out: Optional[str] = None,
    speedscope_out: Optional[str] = None,
) -> Dict[str, object]:
    """Serial-vs-pool *wall-clock* comparison on a scaled-up workload.

    Each mode (serial, then ``workers``-pool) runs one discarded warm-up
    pass plus ``trials`` measured passes of ``queries × repeats``
    executions; the summary is median + MAD per mode.  What is hard-gated
    here is only the correctness fingerprint: both modes hash answers,
    coordinates, simulated latencies, clocks, and rendered metrics over
    *all* passes, and the digests must match byte for byte.  The
    statistical comparison against a committed baseline is
    :func:`gate_wallclock`'s job.

    ``profile=True`` attaches a :class:`~repro.obs.walltime.WallProfiler`
    to each mode and attaches the bucket/utilization/skew report under
    ``"profile"``; ``trace_out``/``speedscope_out`` additionally export
    the pooled mode's joined dual-clock trace.

    Returns a dict with per-mode statistics plus the backwards-compatible
    scalars ``serial_s``/``parallel_s``/``speedup`` (medians).
    """
    import hashlib
    import time

    import numpy as np

    from ..obs.metrics import MetricsRegistry
    from ..obs.walltime import WallProfiler, build_report, report_to_dict
    from ..pdc import PDCConfig, PDCSystem
    from ..query.ast import Condition, combine_and
    from ..query.executor import QueryEngine
    from ..types import PDCType, QueryOp

    if workers <= 0:
        workers = min(8, os.cpu_count() or 1)
    timer = timer or time.perf_counter

    def build():
        rng = np.random.default_rng(42)
        # A private registry per run: the process-global default would
        # accumulate across the serial and pooled runs and poison the
        # metrics half of the fingerprint.
        system = PDCSystem(
            PDCConfig(n_servers=4, region_size_bytes=1 << 20),
            metrics=MetricsRegistry(),
        )
        e = rng.gamma(2.0, 0.7, elements).astype(np.float32)
        x = (rng.random(elements) * 300.0).astype(np.float32)
        system.create_object("energy", e)
        system.create_object("x", x)
        # Selective conjuncts: the first condition's mask dominates, the
        # second exercises the parallel candidate re-check.
        nodes = [
            combine_and(
                Condition("energy", QueryOp.GT, PDCType.FLOAT,
                          4.0 + 0.25 * (i % 4)),
                Condition("x", QueryOp.LT, PDCType.FLOAT, 150.0),
            )
            for i in range(queries)
        ]
        return system, nodes

    profilers: Dict[str, WallProfiler] = {}

    def run(n_workers: int, mode: str):
        system, nodes = build()
        digest = hashlib.sha256()
        prof = WallProfiler(timer=timer) if profile else None
        with QueryEngine(system, workers=n_workers) as engine:
            if prof is not None:
                engine.set_wall_profiler(prof)
                profilers[mode] = prof

            def one_pass():
                for _ in range(max(1, repeats)):
                    for node in nodes:
                        res = engine.execute(node)
                        digest.update(np.int64(res.nhits).tobytes())
                        digest.update(res.selection.coords.tobytes())
                        digest.update(repr(res.elapsed_s).encode())

            if prof is not None:
                def timed_pass(label):
                    def inner():
                        with prof.run(label):
                            one_pass()
                    return inner
                warm: List[float] = []
                runs: List[float] = []
                for _ in range(max(0, warmup)):
                    t0 = timer()
                    timed_pass("warmup")()
                    warm.append(timer() - t0)
                for _ in range(max(1, trials)):
                    t0 = timer()
                    timed_pass("trial")()
                    runs.append(timer() - t0)
                measured = {"warmup_s": warm, "trials_s": runs}
            else:
                measured = measure_trials(
                    one_pass, trials=trials, warmup=warmup, timer=timer
                )
            digest.update(
                repr([c.now for c in system.all_clocks()]).encode()
            )
            digest.update(system.metrics.render().encode())
        stats = dict(measured)
        stats.update(summarize_trials(measured["trials_s"]))
        return stats, digest.hexdigest()

    serial, fp_serial = run(1, "serial")
    parallel, fp_parallel = run(workers, "parallel")
    speedup = (
        serial["median_s"] / parallel["median_s"]
        if parallel["median_s"] > 0 else float("inf")
    )
    out: Dict[str, object] = {
        "workers": workers,
        "elements": elements,
        "queries": queries,
        "repeats": repeats,
        "trials": max(1, trials),
        "warmup": max(0, warmup),
        "serial": serial,
        "parallel": parallel,
        "serial_s": serial["median_s"],
        "parallel_s": parallel["median_s"],
        "speedup": speedup,
        "fingerprint_serial": fp_serial,
        "fingerprint_parallel": fp_parallel,
        "fingerprint_match": fp_serial == fp_parallel,
        "machine": machine_tag(),
        "profile": None,
    }
    if profile:
        from ..obs.walltime import (
            efficiency_table,
            render_report,
            report_tracer,
        )

        reports = {
            mode: build_report(prof) for mode, prof in profilers.items()
        }
        out["profile"] = {
            mode: report_to_dict(rep) for mode, rep in reports.items()
        }
        out["profile_text"] = {
            mode: render_report(rep) for mode, rep in reports.items()
        }
        out["efficiency"] = efficiency_table(
            serial["median_s"], [(workers, parallel["median_s"])]
        )
        if trace_out or speedscope_out:
            tracer = report_tracer(profilers["parallel"])
            if trace_out:
                tracer.write_chrome(trace_out)
            if speedscope_out:
                from ..obs.profiler import write_speedscope

                write_speedscope(tracer, speedscope_out)
    return out


def render_wallclock(wc: Dict[str, object]) -> str:
    serial = wc.get("serial") or {}
    parallel = wc.get("parallel") or {}
    lines = [
        f"wallclock: serial {wc['serial_s']:.3f}s vs "
        f"{wc['workers']}-worker pool {wc['parallel_s']:.3f}s "
        f"(speedup {wc['speedup']:.2f}x, "
        f"{wc['elements']} elements x {wc['queries']} queries x "
        f"{wc['repeats']} repeats) — "
        f"fingerprints {'MATCH' if wc['fingerprint_match'] else 'MISMATCH'}"
    ]
    if serial.get("trials_s"):
        lines.append(
            f"  serial   median {serial['median_s']:.3f}s "
            f"± {serial['mad_s']:.3f}s MAD over "
            f"{len(serial['trials_s'])} trials "
            f"(warm-up {sum(serial.get('warmup_s', [])):.3f}s discarded)"
        )
    if parallel.get("trials_s"):
        lines.append(
            f"  parallel median {parallel['median_s']:.3f}s "
            f"± {parallel['mad_s']:.3f}s MAD over "
            f"{len(parallel['trials_s'])} trials "
            f"(warm-up {sum(parallel.get('warmup_s', [])):.3f}s discarded)"
        )
    for text in (wc.get("profile_text") or {}).values():
        lines.append(text)
    return "\n".join(lines)


# ------------------------------------------------------ wall-clock baseline
def write_wallclock_baseline(
    path: str,
    wc: Dict[str, object],
    note: str = "",
    tolerance: float = DEFAULT_WALLCLOCK_TOLERANCE,
    min_speedup: float = 0.0,
) -> None:
    """Persist a machine-tagged wall-clock baseline with provenance.

    ``min_speedup`` is the hard floor the gate enforces *on this
    machine* (0.0 = fingerprint-only, the right setting for shared CI
    runners); ``tolerance`` is the warn-only band around the medians.
    """
    doc = {
        "suite": "wallclock",
        "note": note,
        "machine": wc["machine"],
        "workers": wc["workers"],
        "elements": wc["elements"],
        "queries": wc["queries"],
        "repeats": wc["repeats"],
        "trials": wc["trials"],
        "serial_median_s": wc["serial"]["median_s"],
        "serial_mad_s": wc["serial"]["mad_s"],
        "parallel_median_s": wc["parallel"]["median_s"],
        "parallel_mad_s": wc["parallel"]["mad_s"],
        "speedup": wc["speedup"],
        "tolerance": float(tolerance),
        "min_speedup": float(min_speedup),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")


def load_wallclock_baseline(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("suite") != "wallclock":
        raise ValueError(f"{path}: not a wall-clock baseline")
    return doc


def gate_wallclock(
    wc: Dict[str, object],
    baseline: Optional[Dict] = None,
    min_speedup: Optional[float] = None,
) -> Tuple[int, str]:
    """The statistical wall-clock gate.  Returns ``(exit_code, text)``.

    Hard failures (exit 1) — the two deterministic claims:

    * the serial-vs-pool **correctness fingerprint** mismatched;
    * the measured speedup fell below the ``min_speedup`` floor (the
      explicit argument wins; otherwise the baseline's, which only
      applies on the machine that wrote the baseline).

    Everything else is reporting: medians outside the baseline's
    tolerance band WARN, and a baseline whose machine tag differs from
    this host is **skipped with an explicit notice** — two machines'
    wall timings are never silently compared.
    """
    lines: List[str] = []
    code = 0
    if not wc["fingerprint_match"]:
        lines.append(
            "wallclock gate: FAIL — pooled execution diverged from serial "
            "(correctness fingerprint mismatch)"
        )
        code = 1

    floor = min_speedup
    current_tag = wc.get("machine") or machine_tag()
    if baseline is not None:
        base_tag = baseline.get("machine") or {}
        if base_tag != current_tag:
            lines.append(
                "wallclock gate: baseline machine tag mismatch — "
                f"baseline {base_tag.get('hostname')!r} "
                f"({base_tag.get('cpu_count')} cpus, "
                f"{base_tag.get('machine')}), "
                f"current {current_tag.get('hostname')!r} "
                f"({current_tag.get('cpu_count')} cpus, "
                f"{current_tag.get('machine')}); statistical comparison "
                "SKIPPED (timings from different machines are never "
                "silently compared) — fingerprint check still applies"
            )
            baseline = None
        elif any(
            baseline.get(k) is not None and baseline.get(k) != wc.get(k)
            for k in ("workers", "elements", "queries", "repeats")
        ):
            lines.append(
                "wallclock gate: baseline workload mismatch — baseline "
                f"{baseline.get('workers')}w/{baseline.get('elements')}el/"
                f"{baseline.get('queries')}q/{baseline.get('repeats')}r, "
                f"current {wc.get('workers')}w/{wc.get('elements')}el/"
                f"{wc.get('queries')}q/{wc.get('repeats')}r; statistical "
                "comparison SKIPPED (timings of different workloads are "
                "never silently compared) — fingerprint check still applies"
            )
            baseline = None
        else:
            tol = float(
                baseline.get("tolerance", DEFAULT_WALLCLOCK_TOLERANCE)
            )
            if floor is None:
                floor = float(baseline.get("min_speedup", 0.0)) or None
            for key, label in (
                ("serial_median_s", "serial median"),
                ("parallel_median_s", "parallel median"),
            ):
                base_v = float(baseline.get(key, 0.0))
                cur_v = float(
                    wc["serial" if key.startswith("serial") else "parallel"][
                        "median_s"
                    ]
                )
                if base_v <= 0.0:
                    continue
                rel = (cur_v - base_v) / base_v
                verdict = "ok" if abs(rel) <= tol else "WARN (out of band)"
                lines.append(
                    f"wallclock gate: {label} {base_v:.3f}s -> {cur_v:.3f}s "
                    f"({rel:+.1%}, band ±{tol:.0%})  {verdict}"
                )

    if floor is not None and floor > 0.0:
        if float(wc["speedup"]) < floor:
            lines.append(
                f"wallclock gate: FAIL — speedup {wc['speedup']:.2f}x "
                f"below the min_speedup floor {floor:.2f}x"
            )
            code = 1
        else:
            lines.append(
                f"wallclock gate: speedup {wc['speedup']:.2f}x >= "
                f"floor {floor:.2f}x  ok"
            )
    if code == 0:
        lines.append("wallclock gate: PASS")
    return code, "\n".join(lines)


# ---------------------------------------------------------------- baselines
def write_baseline(
    path: str,
    metrics: Dict[str, float],
    tolerances: Optional[Dict[str, float]] = None,
    note: str = "",
) -> None:
    doc = {
        "suite": "microsuite",
        "note": note,
        "tolerances": dict(tolerances or DEFAULT_TOLERANCES),
        "metrics": dict(metrics),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")


def load_baseline(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "metrics" not in doc:
        raise ValueError(f"{path}: not a BENCH baseline (no 'metrics' key)")
    return doc


def _tolerance_for(name: str, tolerances: Dict[str, float]) -> float:
    for pattern, tol in tolerances.items():
        if fnmatch(name, pattern):
            return float(tol)
    return DEFAULT_TOLERANCES["*"]


@dataclass
class MetricCheck:
    """One metric's baseline-vs-current verdict."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    tolerance: float
    #: "ok" | "regressed" | "improved" | "missing" | "new".  Drift in
    #: either direction beyond tolerance fails the gate — a determinism
    #: pin, not a one-sided threshold — but direction is still reported.
    status: str

    @property
    def failed(self) -> bool:
        return self.status in ("regressed", "improved", "missing")

    @property
    def rel_delta(self) -> float:
        if self.baseline is None or self.current is None:
            return float("nan")
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


def compare(baseline: Dict, current: Dict[str, float]) -> List[MetricCheck]:
    """Check every metric against the baseline's tolerances."""
    tolerances = dict(baseline.get("tolerances") or DEFAULT_TOLERANCES)
    base_metrics: Dict[str, float] = baseline["metrics"]
    checks: List[MetricCheck] = []
    for name in sorted(set(base_metrics) | set(current)):
        tol = _tolerance_for(name, tolerances)
        b = base_metrics.get(name)
        c = current.get(name)
        if b is None:
            checks.append(MetricCheck(name, None, c, tol, "new"))
            continue
        if c is None:
            checks.append(MetricCheck(name, b, None, tol, "missing"))
            continue
        if b == 0.0:
            drift = abs(c) > 0.0
        else:
            drift = abs(c - b) / abs(b) > tol
        if not drift:
            status = "ok"
        else:
            status = "regressed" if c > b else "improved"
        checks.append(MetricCheck(name, b, c, tol, status))
    return checks


def render_comparison(checks: List[MetricCheck]) -> str:
    lines = []
    width = max((len(c.name) for c in checks), default=0)
    for c in checks:
        if c.status == "new":
            lines.append(f"  {c.name:<{width}}  (new)        {c.current!r}")
            continue
        if c.status == "missing":
            lines.append(
                f"  {c.name:<{width}}  MISSING (baseline {c.baseline!r})"
            )
            continue
        mark = "ok" if c.status == "ok" else c.status.upper()
        delta = c.rel_delta
        lines.append(
            f"  {c.name:<{width}}  {c.baseline!r} -> {c.current!r} "
            f"({delta:+.2e} rel, tol {c.tolerance:.0e})  {mark}"
        )
    failed = [c for c in checks if c.failed]
    lines.append(
        f"benchcheck: {'FAIL' if failed else 'PASS'} "
        f"({len(failed)}/{len(checks)} metrics out of tolerance)"
        if failed else
        f"benchcheck: PASS ({len(checks)} metrics within tolerance)"
    )
    return "\n".join(lines)


def benchcheck(
    baseline_path: str = DEFAULT_BASELINE,
    update: bool = False,
    report_path: Optional[str] = None,
    wallclock_workers: Optional[int] = None,
    wallclock_profile: bool = False,
    wallclock_baseline: Optional[str] = None,
    min_speedup: Optional[float] = None,
) -> Tuple[int, str]:
    """Run the micro-suite and gate against the committed baseline.

    Returns ``(exit_code, report_text)``; exit code 0 means every metric
    stayed within tolerance (or the baseline was (re)written).  With
    ``update=True`` the current numbers become the new baseline.
    ``report_path`` additionally dumps a JSON report (current metrics +
    per-metric verdicts) for CI artifacts.

    ``wallclock_workers`` (0 = auto) appends the serial-vs-pool wall-clock
    section (statistical: warm-up + median/MAD trials) to the report.
    ``wallclock_profile`` adds the overhead-attribution buckets.  When
    ``wallclock_baseline`` names a readable baseline (or ``min_speedup``
    sets an explicit floor), the statistical gate
    (:func:`gate_wallclock`) runs too — hard-failing only on fingerprint
    mismatch or a speedup below the floor, and skipping band comparison
    with a notice when the baseline's machine tag is not this host.
    """
    current = run_micro_suite()
    wallclock: Optional[Dict[str, object]] = None
    gate_text = ""
    gate_code = 0
    if wallclock_workers is not None:
        wallclock = run_wallclock_suite(
            workers=wallclock_workers, profile=wallclock_profile
        )
        wc_base = None
        if wallclock_baseline and os.path.exists(wallclock_baseline):
            wc_base = load_wallclock_baseline(wallclock_baseline)
        if wc_base is not None or min_speedup is not None:
            gate_code, gate_text = gate_wallclock(
                wallclock, wc_base, min_speedup=min_speedup
            )

    if update or not os.path.exists(baseline_path):
        action = "updated" if os.path.exists(baseline_path) else "created"
        write_baseline(baseline_path, current)
        if report_path:
            _write_report(report_path, current, [], wallclock)
        text = f"baseline {action}: {baseline_path} ({len(current)} metrics)"
        if wallclock is not None:
            text += "\n" + render_wallclock(wallclock)
        if gate_text:
            text += "\n" + gate_text
        code = 0 if wallclock is None or wallclock["fingerprint_match"] else 1
        return (code or gate_code), text

    baseline = load_baseline(baseline_path)
    checks = compare(baseline, current)
    if report_path:
        _write_report(report_path, current, checks, wallclock)
    text = f"comparing against {baseline_path}\n" + render_comparison(checks)
    failed = any(c.failed for c in checks)
    if wallclock is not None:
        text += "\n" + render_wallclock(wallclock)
        failed = failed or not wallclock["fingerprint_match"]
    if gate_text:
        text += "\n" + gate_text
        failed = failed or bool(gate_code)
    return (1 if failed else 0), text


def _write_report(
    path: str,
    current: Dict[str, float],
    checks: List[MetricCheck],
    wallclock: Optional[Dict[str, object]] = None,
) -> None:
    doc = {
        "suite": "microsuite",
        "metrics": current,
        "wallclock": wallclock,
        "checks": [
            {
                "name": c.name,
                "baseline": c.baseline,
                "current": c.current,
                "tolerance": c.tolerance,
                "status": c.status,
            }
            for c in checks
        ],
        "failed": sorted(c.name for c in checks if c.failed),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
