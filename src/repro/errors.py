"""Exception hierarchy for the PDC-Query reproduction.

Every error raised by the library derives from :class:`PDCError`, so callers
can catch a single base class.  Sub-classes mirror the major subsystems:
storage, metadata, query construction / evaluation, and the simulated
runtime.
"""

from __future__ import annotations

__all__ = [
    "PDCError",
    "StorageError",
    "CapacityError",
    "ObjectNotFoundError",
    "RegionNotFoundError",
    "MetadataError",
    "MetadataConsistencyError",
    "QueryError",
    "QueryTypeError",
    "QueryShapeError",
    "SelectionError",
    "QueryTimeoutError",
    "RegionUnavailableError",
    "TransportError",
    "RuntimeAbort",
    "IndexError_",
]


class PDCError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class StorageError(PDCError):
    """A simulated storage operation failed (bad offset, missing file, ...)."""


class CapacityError(StorageError):
    """A storage device or cache ran out of capacity."""


class RegionUnavailableError(StorageError):
    """A region read kept failing after exhausting its retry budget.

    Raised by the fault-injection layer (:mod:`repro.faults`); the query
    engine degrades to a partial result instead of crashing the query.
    """


class ObjectNotFoundError(PDCError):
    """An object id / name did not resolve to a live PDC object."""


class RegionNotFoundError(PDCError):
    """A region id did not resolve to a region of the target object."""


class MetadataError(PDCError):
    """Metadata creation, lookup, or checkpointing failed."""


class MetadataConsistencyError(MetadataError):
    """A metadata object was observed on a server that does not own it."""


class QueryError(PDCError):
    """Query construction or evaluation failed."""


class QueryTypeError(QueryError):
    """A query constant's dtype does not match the target object's dtype."""


class QueryShapeError(QueryError):
    """Objects combined in one query do not share identical dimensions."""


class SelectionError(QueryError):
    """A selection is invalid for the requested data-retrieval operation."""


class QueryTimeoutError(QueryError):
    """A query exceeded its simulated-time budget (see :mod:`repro.faults`)."""


class TransportError(PDCError):
    """The simulated client/server transport failed to deliver a message."""


class RuntimeAbort(PDCError):
    """The simulated SPMD runtime aborted (a rank raised an exception)."""


class IndexError_(PDCError):
    """Bitmap-index construction or lookup failed (named with a trailing
    underscore to avoid shadowing the builtin)."""
