"""Deterministic fault plans: seeded, reproducible failure injection.

The query service must survive the failure modes a production deployment
sees — failed or slow PFS reads, crashed or straggling servers, dropped
messages on the wire (the same concerns that drove the parallel-zone
query federation of Nieto-Santisteban et al., MSR-TR-2005-169).  A
:class:`FaultPlan` decides *when* those faults fire, and does so
**deterministically**: every decision is a pure function of

* the plan's ``seed``,
* the fault *kind* (``pfs_read_error``, ``server_crash``, ...),
* a stable *site key* naming the operation (a region cache key, a server
  id, a ``src->dst:op`` wire channel), and
* a per-``(kind, key)`` draw counter.

No wall-clock randomness is involved, so the same seed replays the exact
same fault sequence — bit-identical query results, retry counts, and
simulated elapsed times across runs (regression-tested).  Keys are chosen
so that every draw sequence is advanced from a single thread (the engine
is single-threaded; wire keys include the sending rank), which keeps
multi-threaded runs reproducible too.

With every rate at zero a plan never draws and never perturbs a cost, so
installing a zero-rate plan is bit-identical to running without one.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import PDCError

__all__ = ["FaultConfig", "FaultPlan", "ZERO_FAULTS"]

#: Draws map a 64-bit digest prefix onto [0, 1).
_DRAW_DENOM = float(1 << 64)


@dataclass(frozen=True)
class FaultConfig:
    """Fault rates and recovery knobs of one :class:`FaultPlan`.

    Rates are per-decision probabilities in ``[0, 1]``.  A rate of zero
    disables that fault kind entirely (no draw is made, so costs are
    untouched).
    """

    #: Probability one PFS/tier read attempt fails (retried with backoff).
    pfs_read_error_rate: float = 0.0
    #: Probability one PFS/tier read suffers a latency spike, and its size.
    pfs_slow_rate: float = 0.0
    pfs_slow_factor: float = 4.0
    #: Probability a server crashes when work is dispatched to it.
    server_crash_rate: float = 0.0
    #: Probability a server straggles for one query, and how much.
    server_slow_rate: float = 0.0
    server_slow_factor: float = 3.0
    #: Probability one wire message is dropped (retransmitted) / delayed.
    msg_drop_rate: float = 0.0
    msg_delay_rate: float = 0.0
    #: Recovery: retries per read before giving up, and the exponential
    #: backoff charged to the reader's simulated clock.
    max_retries: int = 3
    retry_backoff_s: float = 1.0e-3
    backoff_multiplier: float = 2.0
    #: Per-query simulated-seconds budget; None disables query timeouts.
    query_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in (
            "pfs_read_error_rate", "pfs_slow_rate", "server_crash_rate",
            "server_slow_rate", "msg_drop_rate", "msg_delay_rate",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise PDCError(f"{name}={rate!r} outside [0, 1]")
        if self.max_retries < 0:
            raise PDCError("max_retries must be >= 0")
        if self.retry_backoff_s < 0 or self.backoff_multiplier < 1.0:
            raise PDCError("backoff must be non-negative with multiplier >= 1")
        for name in ("pfs_slow_factor", "server_slow_factor"):
            if getattr(self, name) < 1.0:
                raise PDCError(f"{name} must be >= 1.0")
        if self.query_timeout_s is not None and self.query_timeout_s <= 0:
            raise PDCError("query_timeout_s must be positive (or None)")


#: The do-nothing configuration (every rate zero).
ZERO_FAULTS = FaultConfig()


@dataclass
class FaultPlan:
    """Seeded fault oracle shared by every layer of one deployment.

    Install with :meth:`repro.pdc.system.PDCSystem.set_fault_plan`; the
    system threads the plan through its servers, its parallel file
    system, and the query engine.  The plan is also usable standalone
    (the simmpi wire takes one directly).
    """

    seed: int
    config: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        self._counters: Dict[Tuple[str, str], int] = {}
        self._injected: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ draws
    def _draw(self, kind: str, key: str) -> float:
        """The next uniform [0, 1) draw of the ``(kind, key)`` sequence."""
        with self._lock:
            ck = (kind, key)
            n = self._counters.get(ck, 0)
            self._counters[ck] = n + 1
        digest = hashlib.blake2b(
            f"{self.seed}:{kind}:{key}:{n}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / _DRAW_DENOM

    def _fires(self, kind: str, key: str, rate: float) -> bool:
        """Decide one fault; zero-rate kinds never draw (and so never
        perturb the shared counters)."""
        if rate <= 0.0:
            return False
        fired = rate >= 1.0 or self._draw(kind, key) < rate
        if fired:
            with self._lock:
                self._injected[kind] = self._injected.get(kind, 0) + 1
        return fired

    # ------------------------------------------------------------ fault kinds
    def pfs_read_fails(self, key: str) -> bool:
        """Does this read attempt of ``key`` fail?  (One draw per attempt —
        faults are transient, so retries re-draw.)"""
        return self._fires("pfs_read_error", key, self.config.pfs_read_error_rate)

    def pfs_slow_factor(self, key: str) -> float:
        """Latency-spike multiplier for one read of ``key`` (1.0 = none)."""
        if self._fires("pfs_slow", key, self.config.pfs_slow_rate):
            return self.config.pfs_slow_factor
        return 1.0

    def server_crashes(self, server_id: int) -> bool:
        """Does this server crash at this dispatch point?"""
        return self._fires("server_crash", str(server_id), self.config.server_crash_rate)

    def server_slow_factor(self, server_id: int) -> float:
        """Straggler multiplier for one server for one query (1.0 = none)."""
        if self._fires("server_slow", str(server_id), self.config.server_slow_rate):
            return self.config.server_slow_factor
        return 1.0

    def msg_dropped(self, channel: str) -> bool:
        """Is this wire message dropped?  ``channel`` must include the
        sending rank so each draw sequence stays single-threaded."""
        return self._fires("msg_drop", channel, self.config.msg_drop_rate)

    def msg_delayed(self, channel: str) -> bool:
        """Is this wire message delayed in flight?"""
        return self._fires("msg_delay", channel, self.config.msg_delay_rate)

    # --------------------------------------------------------------- recovery
    def backoff_s(self, attempt: int) -> float:
        """Simulated seconds to back off before retry ``attempt`` (1-based):
        ``retry_backoff_s * multiplier ** (attempt - 1)``."""
        return self.config.retry_backoff_s * self.config.backoff_multiplier ** max(
            0, attempt - 1
        )

    # ------------------------------------------------------------- inspection
    def injected(self, kind: Optional[str] = None) -> int:
        """Faults injected so far, total or for one kind."""
        with self._lock:
            if kind is not None:
                return self._injected.get(kind, 0)
            return sum(self._injected.values())

    def snapshot(self) -> Dict[str, int]:
        """Injected-fault counts by kind (copy) — determinism checks and
        the ``faults`` CLI report."""
        with self._lock:
            return dict(self._injected)

    def reset(self) -> None:
        """Forget all draw counters and injection counts (replay from the
        beginning of the plan)."""
        with self._lock:
            self._counters.clear()
            self._injected.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, injected={self.injected()})"
