"""Deterministic fault injection and recovery (see :mod:`repro.faults.plan`)."""

from .plan import ZERO_FAULTS, FaultConfig, FaultPlan

__all__ = ["FaultConfig", "FaultPlan", "ZERO_FAULTS"]
