"""Sorted-replica reorganization (§III-D3): by-value sorted copies of
objects so range queries on the sort key hit contiguous storage."""

from .reorganize import SortedReplica

__all__ = ["SortedReplica"]
