"""Data reorganization with sorting (§III-D3).

When users hint that queries will target one object (e.g. VPIC ``Energy``),
PDC builds a **sorted replica**: all of the object's values sorted by the
sort-key object, partitioned into regions like the original.  A range query
on the sort key then touches a contiguous run of regions, and its results
are contiguous on storage — the effect that makes PDC-SH the fastest
single-object configuration in Fig. 3.

The replica keeps a permutation array mapping sorted positions back to the
original coordinates, because query results must be reported in the
*original* object's coordinate space (and non-key objects are materialized
through the same permutation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import QueryError

__all__ = ["SortedReplica"]


@dataclass
class SortedReplica:
    """A by-value sorted copy of one or more objects.

    ``key_values`` is the sort-key object's data in ascending order;
    ``permutation[i]`` is the original coordinate of sorted position ``i``.
    ``companions`` holds other objects' data re-ordered by the same
    permutation (the paper sorts all 7 VPIC variables by energy so matching
    rows stay together).
    """

    key_name: str
    key_values: np.ndarray
    permutation: np.ndarray
    companions: Dict[str, np.ndarray]

    # ------------------------------------------------------------ construction
    @classmethod
    def build(
        cls,
        key_name: str,
        key_values: np.ndarray,
        companions: Optional[Dict[str, np.ndarray]] = None,
    ) -> "SortedReplica":
        """Sort ``key_values`` ascending, applying the same permutation to
        every companion object.

        Uses a stable sort so replicas are bit-deterministic.
        """
        key_values = np.asarray(key_values)
        if key_values.ndim != 1 or key_values.size == 0:
            raise QueryError("sorted replica needs non-empty 1-D key data")
        companions = companions or {}
        for name, arr in companions.items():
            if np.asarray(arr).shape != key_values.shape:
                raise QueryError(
                    f"companion {name!r} shape {np.asarray(arr).shape} != key shape"
                )
        perm = np.argsort(key_values, kind="stable").astype(np.int64)
        return cls(
            key_name=key_name,
            key_values=key_values[perm],
            permutation=perm,
            companions={n: np.asarray(a)[perm] for n, a in companions.items()},
        )

    # -------------------------------------------------------------- inspection
    @property
    def n_elements(self) -> int:
        return int(self.key_values.size)

    @property
    def nbytes(self) -> int:
        """Replica storage cost: sorted key + permutation + companions —
        the *"full copy of the data"* §V mentions (plus the coordinate map)."""
        return (
            self.key_values.nbytes
            + self.permutation.nbytes
            + sum(a.nbytes for a in self.companions.values())
        )

    # ------------------------------------------------------------------ search
    def search_range(
        self,
        lo: Optional[float],
        hi: Optional[float],
        lo_closed: bool = True,
        hi_closed: bool = True,
    ) -> Tuple[int, int]:
        """Sorted-position run ``[start, stop)`` matching a range condition
        via binary search — O(log n) instead of a scan."""
        if lo is None:
            start = 0
        else:
            side = "left" if lo_closed else "right"
            start = int(np.searchsorted(self.key_values, lo, side=side))
        if hi is None:
            stop = self.n_elements
        else:
            side = "right" if hi_closed else "left"
            stop = int(np.searchsorted(self.key_values, hi, side=side))
        return start, max(start, stop)

    def original_coords(self, start: int, stop: int) -> np.ndarray:
        """Original-object coordinates of sorted run ``[start, stop)``."""
        if not (0 <= start <= stop <= self.n_elements):
            raise QueryError(f"bad sorted run [{start}, {stop})")
        return self.permutation[start:stop]

    def companion_slice(self, name: str, start: int, stop: int) -> np.ndarray:
        """Values of a companion object over a sorted run — one contiguous
        read on the replica instead of scattered reads on the original."""
        if name == self.key_name:
            return self.key_values[start:stop]
        try:
            return self.companions[name][start:stop]
        except KeyError:
            raise QueryError(f"object {name!r} is not part of this replica") from None
