"""Query-evaluation strategies (§III-D).

The paper exposes strategy selection through an environment variable set
before the PDC servers start; histogram-only is the default.  The same
knob exists here (``PDC_QUERY_STRATEGY``), plus programmatic selection.
"""

from __future__ import annotations

import enum
import os

from .errors import QueryError

__all__ = ["Strategy", "strategy_from_env"]


class Strategy(enum.Enum):
    """How servers evaluate query conditions against their regions."""

    #: §III-D1 — read every region of every queried object, scan all
    #: elements (the PDC-F configuration of the evaluation).
    FULL_SCAN = "full_scan"
    #: §III-D2 — global-histogram region elimination + selectivity-ordered
    #: evaluation; read and scan only surviving regions (PDC-H, default).
    HISTOGRAM = "histogram"
    #: §III-D4 — histogram pruning + per-region WAH bitmap indexes; reads
    #: index files instead of region data (PDC-HI).
    HIST_INDEX = "hist_index"
    #: §III-D3 — histogram + sorted replica; binary search on the sort key
    #: and contiguous companion reads (PDC-SH).
    SORT_HIST = "sort_hist"
    #: Extension (the paper's §IX future work): the cost-based planner
    #: picks the cheapest of the four per query.
    AUTO = "auto"

    @property
    def uses_histogram(self) -> bool:
        return self is not Strategy.FULL_SCAN

    @property
    def paper_label(self) -> str:
        """Series label used in the paper's figures."""
        return {
            Strategy.FULL_SCAN: "PDC-F",
            Strategy.HISTOGRAM: "PDC-H",
            Strategy.HIST_INDEX: "PDC-HI",
            Strategy.SORT_HIST: "PDC-SH",
            Strategy.AUTO: "PDC-AUTO",
        }[self]


#: Environment variable consulted by :func:`strategy_from_env`.
STRATEGY_ENV_VAR = "PDC_QUERY_STRATEGY"


def strategy_from_env(default: Strategy = Strategy.HISTOGRAM) -> Strategy:
    """Strategy from ``$PDC_QUERY_STRATEGY`` (falls back to histogram —
    *"The histogram only approach is selected by default"*)."""
    raw = os.environ.get(STRATEGY_ENV_VAR)
    if raw is None or not raw.strip():
        return default
    try:
        return Strategy(raw.strip().lower())
    except ValueError:
        valid = ", ".join(s.value for s in Strategy)
        raise QueryError(
            f"bad {STRATEGY_ENV_VAR}={raw!r}; valid values: {valid}"
        ) from None
