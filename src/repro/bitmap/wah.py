"""Word-Aligned Hybrid (WAH) bitmap compression on 64-bit words.

§III-D4: *"The Word-Aligned Hybrid compression (WAH) method is used to
reduce the index file size in Fastbit."*  This is a from-scratch
implementation of the classic WAH encoding (Wu et al.), vectorized with
numpy:

* the bit vector is split into 63-bit **groups**;
* a group that is neither all-0 nor all-1 is stored as a **literal word**
  (MSB = 0, low 63 bits = payload, LSB-first);
* maximal runs of identical all-0/all-1 groups are stored as **fill words**
  (MSB = 1, bit 62 = fill value, low 62 bits = run length in groups).

Logical operations decode to the *group* representation (one uint64 payload
per 63-bit group — still word-aligned, which is exactly the property WAH is
named for), combine with vectorized bitwise ops, and re-encode.  Bit counts
come straight off the compressed form: popcount of literals plus 63× the
one-fill run lengths.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import IndexError_

__all__ = [
    "GROUP_BITS",
    "compress",
    "decompress",
    "bits_to_groups",
    "groups_to_bits",
    "encode_groups",
    "decode_groups",
    "logical_and",
    "logical_or",
    "logical_not",
    "count_set_bits",
    "compressed_nbytes",
]

#: Payload bits per WAH word.
GROUP_BITS = 63

_FILL_FLAG = np.uint64(1) << np.uint64(63)
_FILL_VALUE = np.uint64(1) << np.uint64(62)
_LEN_MASK = _FILL_VALUE - np.uint64(1)
_PAYLOAD_MASK = (np.uint64(1) << np.uint64(GROUP_BITS)) - np.uint64(1)
#: Weights packing LSB-first group bits into a uint64 payload.
_BIT_WEIGHTS = (np.uint64(1) << np.arange(GROUP_BITS, dtype=np.uint64)).astype(np.uint64)

# ``np.bitwise_count`` only exists on NumPy >= 2.0; select a portable
# popcount once at import time so NumPy 1.26 keeps working.
if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:
    _POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount(a: np.ndarray) -> np.ndarray:
        a = np.ascontiguousarray(a, dtype=np.uint64)
        bytes_ = a.view(np.uint8).reshape(a.shape + (8,))
        return _POPCOUNT_TABLE[bytes_].sum(axis=-1, dtype=np.uint64)


# --------------------------------------------------------------------- groups
def bits_to_groups(bits: np.ndarray) -> Tuple[np.ndarray, int]:
    """Pack a 1-D boolean vector into 63-bit group payloads.

    Returns ``(groups, n_bits)`` where ``groups`` is uint64 with one entry
    per (zero-padded) 63-bit group.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 1:
        raise IndexError_("WAH input must be a 1-D bit vector")
    n_bits = bits.size
    n_groups = (n_bits + GROUP_BITS - 1) // GROUP_BITS
    if n_groups == 0:
        return np.zeros(0, dtype=np.uint64), 0
    padded = np.zeros(n_groups * GROUP_BITS, dtype=bool)
    padded[:n_bits] = bits
    groups = padded.reshape(n_groups, GROUP_BITS).astype(np.uint64) @ _BIT_WEIGHTS
    return groups.astype(np.uint64), n_bits


def groups_to_bits(groups: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`bits_to_groups`."""
    groups = np.asarray(groups, dtype=np.uint64)
    expanded = (groups[:, None] >> np.arange(GROUP_BITS, dtype=np.uint64)) & np.uint64(1)
    return expanded.reshape(-1).astype(bool)[:n_bits]


# ----------------------------------------------------------------- encode/decode
def encode_groups(groups: np.ndarray) -> np.ndarray:
    """Run-length encode group payloads into WAH words."""
    groups = np.asarray(groups, dtype=np.uint64)
    n = groups.size
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    is_zero = groups == 0
    is_ones = groups == _PAYLOAD_MASK
    fillable = is_zero | is_ones
    # Run boundaries: change of (fillable, value) signature.
    sig = np.where(fillable, np.where(is_ones, 2, 1), 0)
    change = np.flatnonzero(np.diff(sig) != 0) + 1
    starts = np.concatenate(([0], change))
    stops = np.concatenate((change, [n]))

    out = []
    max_run = int(_LEN_MASK)
    for a, b in zip(starts, stops):
        if sig[a] == 0:
            out.append(groups[a:b])  # literals pass through
            continue
        fill_value = _FILL_VALUE if sig[a] == 2 else np.uint64(0)
        run = b - a
        while run > 0:
            chunk = min(run, max_run)
            out.append(np.array([_FILL_FLAG | fill_value | np.uint64(chunk)], dtype=np.uint64))
            run -= chunk
    return np.concatenate(out) if out else np.zeros(0, dtype=np.uint64)


def decode_groups(words: np.ndarray) -> np.ndarray:
    """Expand WAH words back into one uint64 payload per group."""
    words = np.asarray(words, dtype=np.uint64)
    if words.size == 0:
        return np.zeros(0, dtype=np.uint64)
    is_fill = (words & _FILL_FLAG) != 0
    # Each literal contributes 1 group; each fill contributes its run length.
    lengths = np.where(is_fill, (words & _LEN_MASK).astype(np.int64), 1)
    values = np.where(
        is_fill,
        np.where((words & _FILL_VALUE) != 0, _PAYLOAD_MASK, np.uint64(0)),
        words & _PAYLOAD_MASK,
    )
    return np.repeat(values, lengths)


# ------------------------------------------------------------------ public api
def compress(bits: np.ndarray) -> Tuple[np.ndarray, int]:
    """Compress a boolean vector; returns ``(words, n_bits)``."""
    groups, n_bits = bits_to_groups(bits)
    return encode_groups(groups), n_bits


def decompress(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Decompress WAH words back to a boolean vector of ``n_bits``."""
    groups = decode_groups(words)
    if groups.size * GROUP_BITS < n_bits:
        raise IndexError_(
            f"compressed stream covers {groups.size * GROUP_BITS} bits, need {n_bits}"
        )
    return groups_to_bits(groups, n_bits)


def _decode_runs(words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """WAH words → run-length form ``(values, lengths)``: one entry per
    word (literals are length-1 runs), *without* expanding fills."""
    words = np.asarray(words, dtype=np.uint64)
    if words.size == 0:
        return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
    is_fill = (words & _FILL_FLAG) != 0
    lengths = np.where(is_fill, (words & _LEN_MASK).astype(np.int64), 1)
    values = np.where(
        is_fill,
        np.where((words & _FILL_VALUE) != 0, _PAYLOAD_MASK, np.uint64(0)),
        words & _PAYLOAD_MASK,
    )
    keep = lengths > 0  # defensive: a zero-length fill encodes nothing
    if not keep.all():
        values, lengths = values[keep], lengths[keep]
    return values, lengths


def _encode_runs(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """:func:`encode_groups` on run-length input without expanding it.

    Produces the canonical encoding — adjacent same-value fillable runs
    merge into maximal fills (split at the max run length), literal runs
    pass through — so the output is byte-identical to
    ``encode_groups(np.repeat(values, lengths))``.
    """
    n = values.size
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    is_zero = values == 0
    is_ones = values == _PAYLOAD_MASK
    sig = np.where(is_zero | is_ones, np.where(is_ones, 2, 1), 0)
    change = np.flatnonzero(np.diff(sig) != 0) + 1
    starts = np.concatenate(([0], change))
    stops = np.concatenate((change, [n]))

    out = []
    max_run = int(_LEN_MASK)
    for a, b in zip(starts, stops):
        if sig[a] == 0:
            # Literal groups: usually length-1 runs straight from a
            # segment merge; expand the (rare) longer ones.
            if bool((lengths[a:b] == 1).all()):
                out.append(values[a:b])
            else:
                out.append(np.repeat(values[a:b], lengths[a:b]))
            continue
        fill_value = _FILL_VALUE if sig[a] == 2 else np.uint64(0)
        run = int(lengths[a:b].sum())
        while run > 0:
            chunk = min(run, max_run)
            out.append(
                np.array([_FILL_FLAG | fill_value | np.uint64(chunk)], dtype=np.uint64)
            )
            run -= chunk
    return np.concatenate(out) if out else np.zeros(0, dtype=np.uint64)


def _binary_op(w1: np.ndarray, w2: np.ndarray, op) -> np.ndarray:
    """Combine two compressed streams run-by-run.

    The previous implementation expanded both streams to one payload per
    group (``np.repeat``) before combining — O(total groups) work and
    memory even when the streams are a handful of giant fills.  This
    merge walks the *runs*: segment boundaries are the union of both
    streams' cumulative run ends, each segment takes one vectorized
    ``op``, and the canonical re-encode above restores maximal fills.
    Work is O(runs₁ + runs₂), independent of fill lengths, and the output
    is byte-identical to the expand-op-encode reference.
    """
    v1, l1 = _decode_runs(w1)
    v2, l2 = _decode_runs(w2)
    n1 = int(l1.sum())
    n2 = int(l2.sum())
    if n1 != n2:
        # Align by zero-padding the shorter stream (same bit-vector length,
        # different trailing-fill omission is not produced by compress, so
        # a size mismatch means caller error).
        raise IndexError_(f"bitmap group counts differ: {n1} vs {n2}")
    if n1 == 0:
        return np.zeros(0, dtype=np.uint64)
    c1 = np.cumsum(l1)
    c2 = np.cumsum(l2)
    bounds = np.union1d(c1, c2)  # sorted segment end positions
    i1 = np.searchsorted(c1, bounds, side="left")  # covering run per segment
    i2 = np.searchsorted(c2, bounds, side="left")
    seg_vals = op(v1[i1], v2[i2])
    seg_lens = np.diff(bounds, prepend=0)
    return _encode_runs(seg_vals, seg_lens)


def logical_and(w1: np.ndarray, w2: np.ndarray) -> np.ndarray:
    """AND of two compressed bitmaps over the same domain."""
    return _binary_op(w1, w2, np.bitwise_and)


def logical_or(w1: np.ndarray, w2: np.ndarray) -> np.ndarray:
    """OR of two compressed bitmaps over the same domain."""
    return _binary_op(w1, w2, np.bitwise_or)


def logical_not(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Complement within an ``n_bits`` domain (padding bits stay 0)."""
    if n_bits < 0:
        raise IndexError_(f"n_bits must be non-negative, got {n_bits}")
    groups = np.bitwise_xor(decode_groups(words), _PAYLOAD_MASK)
    if groups.size * GROUP_BITS < n_bits:
        raise IndexError_(
            f"compressed stream covers {groups.size * GROUP_BITS} bits, need {n_bits}"
        )
    # Truncate to the domain's groups (a longer stream would otherwise leak
    # complemented padding as set bits) and clear the final group's padding
    # so counts stay correct.  The old tail computation went negative for
    # short n_bits, wrapping the uint64 shift into a garbage mask.
    n_groups = (n_bits + GROUP_BITS - 1) // GROUP_BITS
    groups = groups[:n_groups]
    if n_groups:
        tail_bits = n_bits - (n_groups - 1) * GROUP_BITS
        tail_mask = (np.uint64(1) << np.uint64(tail_bits)) - np.uint64(1)
        groups[-1] &= tail_mask
    return encode_groups(groups)


def count_set_bits(words: np.ndarray) -> int:
    """Population count directly on the compressed stream."""
    words = np.asarray(words, dtype=np.uint64)
    if words.size == 0:
        return 0
    is_fill = (words & _FILL_FLAG) != 0
    literals = words[~is_fill] & _PAYLOAD_MASK
    lit_count = int(_popcount(literals).sum()) if literals.size else 0
    ones_fills = words[is_fill & ((words & _FILL_VALUE) != 0)]
    fill_count = int((ones_fills & _LEN_MASK).astype(np.int64).sum()) * GROUP_BITS
    return lit_count + fill_count


def compressed_nbytes(words: np.ndarray) -> int:
    """Storage footprint of a compressed stream."""
    return int(np.asarray(words).size) * 8
