"""Per-region binned bitmap indexes (FastBit-equivalent).

§III-D4: *"We construct a bitmap for each region"*; querying reads and
reconstructs the index instead of the region's data.  A
:class:`RegionBitmapIndex` holds one WAH-compressed bitmap per occupied bin
of the significant-digit grid; a range query ORs the bitmaps of
fully-covered bins and (only when endpoints fall off the grid) flags
boundary bins for a raw-data candidate check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import IndexError_
from ..interval import Interval
from . import wah
from .binning import assign_bins, sig_digit_edges

__all__ = ["RegionBitmapIndex", "BitmapQueryResult"]


@dataclass
class BitmapQueryResult:
    """Outcome of an index probe on one region.

    ``sure_positions`` are definite hits (elements of fully-covered bins).
    ``candidate_positions`` may or may not match and must be verified
    against the raw values — empty for on-grid query endpoints.
    ``words_scanned`` is the number of compressed words touched (feeds the
    cost model).
    """

    sure_positions: np.ndarray
    candidate_positions: np.ndarray
    words_scanned: int

    @property
    def needs_candidate_check(self) -> bool:
        return self.candidate_positions.size > 0


@dataclass(frozen=True)
class IndexProbeCost:
    """I/O and scan footprint of one index probe (see ``query_cost``)."""

    words_touched: int
    bytes_touched: int
    header_bytes: int
    n_bins_touched: int
    candidates: int


@dataclass
class RegionBitmapIndex:
    """Binned, WAH-compressed bitmap index of one region's values.

    Besides the per-bin bitmaps, the index records each occupied bin's true
    content min/max.  A bin is then *fully covered* by a query interval iff
    its content range lies inside the interval — exact even for open
    endpoints that coincide with bin edges (the plain edge-based test would
    send such bins to a raw-data candidate check unnecessarily).
    """

    edges: np.ndarray
    #: Occupied bin ids, ascending.
    bin_ids: np.ndarray
    #: True content minimum/maximum per occupied bin (aligned to bin_ids).
    bin_min: np.ndarray
    bin_max: np.ndarray
    #: bin id → compressed WAH words (only bins with members are present).
    bitmaps: Dict[int, np.ndarray]
    n_elements: int

    # ------------------------------------------------------------ construction
    @classmethod
    def build(cls, data: np.ndarray, precision: int = 2) -> "RegionBitmapIndex":
        """Index a region's raw values with ``precision``-significant-digit
        binning (paper default: 2)."""
        data = np.asarray(data)
        if data.ndim != 1 or data.size == 0:
            raise IndexError_("bitmap index needs non-empty 1-D data")
        values = data.astype(np.float64, copy=False)
        edges = sig_digit_edges(float(values.min()), float(values.max()), precision)
        bin_idx = assign_bins(values, edges)
        occupied = np.unique(bin_idx)
        bitmaps: Dict[int, np.ndarray] = {}
        bin_min = np.empty(occupied.size)
        bin_max = np.empty(occupied.size)
        for k, b in enumerate(occupied):
            member = bin_idx == b
            words, _ = wah.compress(member)
            bitmaps[int(b)] = words
            members = values[member]
            bin_min[k] = members.min()
            bin_max[k] = members.max()
        return cls(
            edges=edges,
            bin_ids=occupied.astype(np.int64),
            bin_min=bin_min,
            bin_max=bin_max,
            bitmaps=bitmaps,
            n_elements=int(values.size),
        )

    # -------------------------------------------------------------- inspection
    @property
    def n_bins(self) -> int:
        return int(self.edges.size - 1)

    @property
    def n_occupied_bins(self) -> int:
        return len(self.bitmaps)

    @property
    def nbytes(self) -> int:
        """Serialized index size: all compressed bitmaps + the edge array +
        per-bitmap headers.  This is what lands in the index file (the paper
        reports 15–17 % of data size for the VPIC objects)."""
        return (
            sum(wah.compressed_nbytes(w) for w in self.bitmaps.values())
            + self.edges.size * 8
            + len(self.bitmaps) * 16  # bin id + word count
            + len(self.bitmaps) * 16  # content min/max
        )

    def total_words(self) -> int:
        return sum(int(w.size) for w in self.bitmaps.values())

    # ------------------------------------------------------------------ query
    def _classify_occupied(self, interval: Interval) -> Tuple[np.ndarray, np.ndarray]:
        """(fully-covered, partial) occupied-bin ids for ``interval``,
        classified against true per-bin content ranges."""
        overlap = interval.overlaps_range_arrays(self.bin_min, self.bin_max)
        full = overlap & interval.contains_range_arrays(self.bin_min, self.bin_max)
        partial = overlap & ~full
        return self.bin_ids[full], self.bin_ids[partial]

    def query(self, interval: Interval) -> BitmapQueryResult:
        """Probe the index for an interval condition.

        ORs the fully-covered bins' bitmaps on the compressed form; partial
        (boundary) bins become candidates.
        """
        full_bins, partial_bins = self._classify_occupied(interval)

        words_scanned = 0
        acc: Optional[np.ndarray] = None
        for b in full_bins:
            words = self.bitmaps.get(int(b))
            if words is None:
                continue
            words_scanned += int(words.size)
            acc = words if acc is None else wah.logical_or(acc, words)
        if acc is None:
            sure = np.zeros(0, dtype=np.int64)
        else:
            sure = np.flatnonzero(wah.decompress(acc, self.n_elements)).astype(np.int64)

        cand_acc: Optional[np.ndarray] = None
        for b in partial_bins:
            words = self.bitmaps.get(int(b))
            if words is None:
                continue
            words_scanned += int(words.size)
            cand_acc = words if cand_acc is None else wah.logical_or(cand_acc, words)
        if cand_acc is None:
            candidates = np.zeros(0, dtype=np.int64)
        else:
            candidates = np.flatnonzero(
                wah.decompress(cand_acc, self.n_elements)
            ).astype(np.int64)

        return BitmapQueryResult(
            sure_positions=sure,
            candidate_positions=candidates,
            words_scanned=words_scanned,
        )

    def _count_bins(self, bins: np.ndarray) -> int:
        """Total set bits across a set of bins, in one vectorized popcount
        pass: :func:`wah.count_set_bits` is word-local, so the count over
        the concatenated streams equals the sum of per-bin counts without
        a Python-level loop per bin."""
        streams = [
            self.bitmaps[int(b)] for b in bins if int(b) in self.bitmaps
        ]
        if not streams:
            return 0
        if len(streams) == 1:
            return wah.count_set_bits(streams[0])
        return wah.count_set_bits(np.concatenate(streams))

    def count_range(self, interval: Interval) -> Tuple[int, int]:
        """(sure_hits, candidates) counts without materializing positions —
        the get-nhits fast path when no candidate check is needed."""
        full_bins, partial_bins = self._classify_occupied(interval)
        return self._count_bins(full_bins), self._count_bins(partial_bins)

    def query_cost(self, interval: Interval) -> "IndexProbeCost":
        """What a FastBit-style probe of this index touches for an interval.

        FastBit seeks to and reads only the bitmaps of bins overlapping the
        condition (plus the small bin directory), so query-time index I/O is
        proportional to the touched bins, not the whole index file.
        """
        full_bins, partial_bins = self._classify_occupied(interval)
        touched = np.concatenate([full_bins, partial_bins])
        words = int(sum(self.bitmaps[int(b)].size for b in touched))
        candidates = self._count_bins(partial_bins)
        # Directory: edges + per-bin (id, offset, minmax) records.
        header_bytes = self.edges.size * 8 + self.n_occupied_bins * 32
        return IndexProbeCost(
            words_touched=words,
            bytes_touched=words * 8,
            header_bytes=int(header_bytes),
            n_bins_touched=int(touched.size),
            candidates=int(candidates),
        )

    # ---------------------------------------------------------- serialization
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten to arrays for storage as one index file."""
        bin_ids = np.array(sorted(self.bitmaps), dtype=np.int64)
        lengths = np.array([self.bitmaps[int(b)].size for b in bin_ids], dtype=np.int64)
        payload = (
            np.concatenate([self.bitmaps[int(b)] for b in bin_ids])
            if bin_ids.size
            else np.zeros(0, dtype=np.uint64)
        )
        order = np.searchsorted(self.bin_ids, bin_ids)
        return {
            "edges": self.edges,
            "bin_ids": bin_ids,
            "bin_min": self.bin_min[order],
            "bin_max": self.bin_max[order],
            "lengths": lengths,
            "payload": payload,
            "meta": np.array([self.n_elements], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "RegionBitmapIndex":
        bitmaps: Dict[int, np.ndarray] = {}
        offset = 0
        for b, ln in zip(arrays["bin_ids"], arrays["lengths"]):
            bitmaps[int(b)] = np.asarray(
                arrays["payload"][offset : offset + int(ln)], dtype=np.uint64
            )
            offset += int(ln)
        return cls(
            edges=np.asarray(arrays["edges"], dtype=np.float64),
            bin_ids=np.asarray(arrays["bin_ids"], dtype=np.int64),
            bin_min=np.asarray(arrays["bin_min"], dtype=np.float64),
            bin_max=np.asarray(arrays["bin_max"], dtype=np.float64),
            bitmaps=bitmaps,
            n_elements=int(arrays["meta"][0]),
        )

    def to_bytes(self) -> np.ndarray:
        """Flat uint8 buffer (the on-storage index-file format):
        a length header followed by the five payload sections."""
        a = self.to_arrays()
        sections = [
            a["edges"].astype(np.float64),
            a["bin_ids"].astype(np.int64),
            a["bin_min"].astype(np.float64),
            a["bin_max"].astype(np.float64),
            a["lengths"].astype(np.int64),
            a["payload"].astype(np.uint64),
            a["meta"].astype(np.int64),
        ]
        header = np.array([s.size for s in sections], dtype=np.int64)
        return np.concatenate(
            [header.view(np.uint8)] + [s.view(np.uint8) for s in sections]
        )

    @classmethod
    def from_bytes(cls, buf: np.ndarray) -> "RegionBitmapIndex":
        """Inverse of :meth:`to_bytes`."""
        buf = np.ascontiguousarray(np.asarray(buf, dtype=np.uint8))
        n_sections = 7
        header = buf[: n_sections * 8].view(np.int64)
        dtypes = [np.float64, np.int64, np.float64, np.float64, np.int64, np.uint64, np.int64]
        names = ["edges", "bin_ids", "bin_min", "bin_max", "lengths", "payload", "meta"]
        arrays: Dict[str, np.ndarray] = {}
        off = n_sections * 8
        for name, dt, count in zip(names, dtypes, header):
            nbytes = int(count) * np.dtype(dt).itemsize
            arrays[name] = buf[off : off + nbytes].view(dt)
            off += nbytes
        if off != buf.size:
            raise IndexError_(f"index file corrupt: {buf.size - off} trailing bytes")
        return cls.from_arrays(arrays)
