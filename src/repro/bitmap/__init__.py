"""Bitmap-index subsystem: WAH compression, FastBit-style precision
binning, and per-region bitmap indexes (§III-D4)."""

from .binning import assign_bins, classify_bins, sig_digit_edges
from .index import BitmapQueryResult, RegionBitmapIndex
from .wah import (
    GROUP_BITS,
    compress,
    compressed_nbytes,
    count_set_bits,
    decompress,
    logical_and,
    logical_not,
    logical_or,
)

__all__ = [
    "assign_bins",
    "classify_bins",
    "sig_digit_edges",
    "BitmapQueryResult",
    "RegionBitmapIndex",
    "GROUP_BITS",
    "compress",
    "compressed_nbytes",
    "count_set_bits",
    "decompress",
    "logical_and",
    "logical_not",
    "logical_or",
]
