"""FastBit-style precision binning.

§III-D4: *"the data split into a number of bins by Fastbit automatically.
One representative key is selected in each bin"* with ``precision = 2`` as
the default.  FastBit's precision binning places bin boundaries on the grid
of numbers with ``precision`` significant decimal digits; any query whose
endpoints have at most that many significant digits aligns exactly with bin
boundaries, so no candidate (raw-data) check is needed — which is why the
paper calls precision 2 *"sufficient for the queries evaluated"*.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import IndexError_
from ..interval import Interval

__all__ = ["sig_digit_edges", "assign_bins", "classify_bins"]


def _decade_edges(precision: int, decade: int) -> np.ndarray:
    """Positive grid points with ``precision`` significant digits in
    ``[10^decade, 10^(decade+1))`` — e.g. precision 2, decade 0:
    1.0, 1.1, ..., 9.9."""
    mantissas = np.arange(10 ** (precision - 1), 10 ** precision)
    return mantissas * (10.0 ** (decade - precision + 1))


def sig_digit_edges(vmin: float, vmax: float, precision: int = 2) -> np.ndarray:
    """Ascending bin edges covering ``[vmin, vmax]`` on the grid of numbers
    with ``precision`` significant decimal digits (mirrored for negatives,
    with 0 on the grid).

    The outermost edges are extended one grid step beyond the data so every
    value falls in a proper bin.
    """
    if precision < 1 or precision > 6:
        raise IndexError_(f"precision must be in [1, 6], got {precision}")
    if not (math.isfinite(vmin) and math.isfinite(vmax)) or vmin > vmax:
        raise IndexError_(f"bad value range [{vmin}, {vmax}]")

    def positive_grid(limit: float) -> np.ndarray:
        """Grid points in (0, next-grid-point-above(limit)]."""
        if limit <= 0:
            return np.zeros(0)
        hi_decade = int(math.floor(math.log10(limit)))
        # Cover ~8 decades below the top; anything smaller collapses to the
        # zero edge, which is plenty for float32 scientific data.
        decades = range(hi_decade - 7, hi_decade + 1)
        grid = np.concatenate([_decade_edges(precision, d) for d in decades])
        above = grid[grid > limit]
        if above.size:
            # First grid point strictly above the limit closes the top bin.
            return np.concatenate([grid[grid <= limit], above[:1]])
        # limit sits in the top decade's last bin: close with the next
        # decade's first point.
        return np.concatenate([grid, _decade_edges(precision, hi_decade + 1)[:1]])

    abs_hi = max(abs(vmin), abs(vmax))
    if abs_hi == 0.0:
        return np.array([-1.0, 0.0, 1.0])
    pos = positive_grid(abs_hi)
    edges = np.concatenate([-pos[::-1], [0.0], pos])

    lo_idx = int(np.searchsorted(edges, vmin, side="right") - 1)
    hi_idx = int(np.searchsorted(edges, vmax, side="right"))
    lo_idx = max(0, lo_idx)
    hi_idx = min(edges.size - 1, hi_idx)
    out = edges[lo_idx : hi_idx + 1]
    if out.size < 2:
        out = np.array([vmin, math.nextafter(vmax, math.inf)])
    return out


def assign_bins(data: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Bin index of each element: bin ``i`` covers ``[edges[i], edges[i+1])``.

    Values outside the edge span raise — edges must be built from this
    data's min/max.
    """
    idx = np.searchsorted(edges, data, side="right") - 1
    if idx.size and (idx.min() < 0 or idx.max() >= edges.size - 1):
        raise IndexError_("data outside bin-edge span")
    return idx.astype(np.int64)


def classify_bins(edges: np.ndarray, interval: Interval) -> Tuple[np.ndarray, np.ndarray]:
    """Split bins into (fully-inside, partially-overlapping) for a query.

    Returns two int arrays of bin indices.  Fully-inside bins contribute
    their bitmaps directly; partial bins need a raw-data candidate check
    (empty when query endpoints lie on the edge grid — the precision-2
    sweet spot)."""
    lo_edges = edges[:-1]
    hi_edges = edges[1:]
    q_lo, q_hi = interval.finite_bounds()

    # Bin content is [lo_edge, hi_edge): overlap/containment tests below
    # account for the half-open upper edge.
    overlap = np.ones(lo_edges.size, dtype=bool)
    if interval.lo is not None:
        # Bin overlaps iff some value < hi_edge satisfies the lower bound.
        overlap &= hi_edges > q_lo
    if interval.hi is not None:
        overlap &= (lo_edges <= q_hi) if interval.hi_closed else (lo_edges < q_hi)

    full = overlap.copy()
    if interval.lo is not None:
        full &= (lo_edges > q_lo) | ((lo_edges == q_lo) & interval.lo_closed)
    if interval.hi is not None:
        # Entire bin [lo, hi) inside iff hi_edge <= q_hi (strict values only
        # reach hi_edge - ulp); for open upper bound hi_edge <= q_hi works too.
        full &= hi_edges <= q_hi
    partial = overlap & ~full
    return np.flatnonzero(full), np.flatnonzero(partial)
