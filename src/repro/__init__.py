"""PDC-Query: a parallel query service for object-centric data management
systems.

Reproduction of Tang, Byna, Dong & Koziol, *"Parallel Query Service for
Object-centric Data Management Systems"*, IPDPS 2020.  The package builds
every system the paper depends on — a simulated SPMD runtime, a simulated
Lustre-like parallel file system with a calibrated cost model, the PDC
object-management substrate, mergeable global histograms (Algorithm 1),
WAH bitmap indexes, sorted replicas — and the PDC-Query engine on top.

Quickstart::

    import numpy as np
    from repro import PDCConfig, PDCSystem, PDCquery_create, PDCquery_get_nhits

    system = PDCSystem(PDCConfig(n_servers=4, region_size_bytes=1 << 20))
    energy = system.create_object("energy", np.random.default_rng(0)
                                  .gamma(2.0, 0.7, 1 << 18).astype(np.float32))
    q = PDCquery_create(system, energy.meta.object_id, ">", "float", 2.0)
    print(PDCquery_get_nhits(q))
"""

from .errors import (
    MetadataError,
    ObjectNotFoundError,
    PDCError,
    QueryError,
    QueryShapeError,
    QueryTimeoutError,
    QueryTypeError,
    RegionUnavailableError,
    SelectionError,
    StorageError,
)
from .faults import FaultConfig, FaultPlan
from .interval import Interval
from .obs import MetricsRegistry, Tracer, get_registry
from .pdc import PDCConfig, PDCSystem
from .query import (
    AsyncQueryClient,
    PDCQuery,
    PDCquery_and,
    PDCquery_create,
    PDCquery_get_data,
    PDCquery_get_data_batch,
    PDCquery_get_histogram,
    PDCquery_estimate_nhits,
    PDCquery_get_nhits,
    PDCquery_get_selection,
    PDCquery_or,
    PDCquery_set_region,
    PDCquery_tag,
    QueryEngine,
    Selection,
)
from .pdc.capi import PDCquery_set_priority, PDCquery_set_timeout
from .service import QueryService, ServiceConfig, Tenant
from .strategies import Strategy
from .types import GB, KB, MB, TB, PDCType, QueryOp

__version__ = "1.0.0"

__all__ = [
    "MetadataError",
    "ObjectNotFoundError",
    "PDCError",
    "QueryError",
    "QueryShapeError",
    "QueryTypeError",
    "SelectionError",
    "StorageError",
    "QueryTimeoutError",
    "RegionUnavailableError",
    "FaultConfig",
    "FaultPlan",
    "Interval",
    "MetricsRegistry",
    "Tracer",
    "get_registry",
    "PDCConfig",
    "PDCSystem",
    "PDCQuery",
    "PDCquery_and",
    "PDCquery_create",
    "PDCquery_get_data",
    "PDCquery_get_data_batch",
    "PDCquery_get_histogram",
    "PDCquery_estimate_nhits",
    "PDCquery_get_nhits",
    "PDCquery_get_selection",
    "PDCquery_or",
    "PDCquery_set_region",
    "PDCquery_set_priority",
    "PDCquery_set_timeout",
    "PDCquery_tag",
    "QueryEngine",
    "Selection",
    "Strategy",
    "QueryService",
    "ServiceConfig",
    "Tenant",
    "AsyncQueryClient",
    "GB",
    "KB",
    "MB",
    "TB",
    "PDCType",
    "QueryOp",
    "__version__",
]
