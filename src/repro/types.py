"""Shared scalar types, operators, and unit helpers.

The paper's C API (Fig. 1) passes an operator (``>``, ``>=``, ``<``, ``<=``,
``=``), a ``pdc_type_t`` data type, and a value pointer.  This module defines
the Python equivalents: :class:`QueryOp`, :class:`PDCType`, and conversion
helpers between PDC types and numpy dtypes.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

from .errors import QueryTypeError

__all__ = [
    "QueryOp",
    "PDCType",
    "Scalar",
    "KB",
    "MB",
    "GB",
    "TB",
    "dtype_of",
    "pdc_type_of_dtype",
    "check_value_type",
]

#: Binary size units used throughout (the paper quotes MB/GB region sizes).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

Scalar = Union[int, float]


class QueryOp(enum.Enum):
    """Comparison operator of a simple query condition.

    Matches ``pdc_query_op_t`` in the paper's API: ``>``, ``>=``, ``<``,
    ``<=``, ``=``.
    """

    GT = ">"
    GTE = ">="
    LT = "<"
    LTE = "<="
    EQ = "="

    def apply(self, data: np.ndarray, value: Scalar) -> np.ndarray:
        """Vectorized evaluation of ``data <op> value`` returning a bool mask."""
        if self is QueryOp.GT:
            return data > value
        if self is QueryOp.GTE:
            return data >= value
        if self is QueryOp.LT:
            return data < value
        if self is QueryOp.LTE:
            return data <= value
        return data == value

    def flip(self) -> "QueryOp":
        """Mirror operator (``a < x``  ⇔  ``x > a``), used when normalizing
        range conditions."""
        return {
            QueryOp.GT: QueryOp.LT,
            QueryOp.GTE: QueryOp.LTE,
            QueryOp.LT: QueryOp.GT,
            QueryOp.LTE: QueryOp.GTE,
            QueryOp.EQ: QueryOp.EQ,
        }[self]

    @property
    def is_lower_bound(self) -> bool:
        """True for ``>`` / ``>=`` — the condition bounds values from below."""
        return self in (QueryOp.GT, QueryOp.GTE)

    @property
    def is_upper_bound(self) -> bool:
        """True for ``<`` / ``<=`` — the condition bounds values from above."""
        return self in (QueryOp.LT, QueryOp.LTE)


class PDCType(enum.Enum):
    """Element type of a PDC data object (``pdc_type_t``)."""

    FLOAT = "float"
    DOUBLE = "double"
    INT = "int"
    UINT = "unsigned int"
    INT64 = "long long"
    UINT64 = "unsigned long long"

    @property
    def np_dtype(self) -> np.dtype:
        return _PDC_TO_NP[self]

    @property
    def itemsize(self) -> int:
        return self.np_dtype.itemsize

    @property
    def is_integral(self) -> bool:
        return self not in (PDCType.FLOAT, PDCType.DOUBLE)


_PDC_TO_NP = {
    PDCType.FLOAT: np.dtype(np.float32),
    PDCType.DOUBLE: np.dtype(np.float64),
    PDCType.INT: np.dtype(np.int32),
    PDCType.UINT: np.dtype(np.uint32),
    PDCType.INT64: np.dtype(np.int64),
    PDCType.UINT64: np.dtype(np.uint64),
}
_NP_TO_PDC = {v: k for k, v in _PDC_TO_NP.items()}


def dtype_of(pdc_type: PDCType) -> np.dtype:
    """numpy dtype backing a :class:`PDCType`."""
    return pdc_type.np_dtype


def pdc_type_of_dtype(dtype: np.dtype) -> PDCType:
    """Inverse of :func:`dtype_of`.

    Raises :class:`QueryTypeError` for dtypes PDC does not model.
    """
    try:
        return _NP_TO_PDC[np.dtype(dtype)]
    except KeyError:
        raise QueryTypeError(f"unsupported dtype for PDC objects: {dtype!r}") from None


def check_value_type(value: Scalar, pdc_type: PDCType) -> Scalar:
    """Validate that ``value`` is representable in ``pdc_type``.

    Mirrors the C API's requirement that the value pointer matches the
    declared ``pdc_type_t``.  Returns the value cast to the Python type that
    round-trips through the numpy dtype.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise QueryTypeError(f"query value must be a number, got {type(value).__name__}")
    np_value = np.asarray(value).astype(pdc_type.np_dtype)
    if pdc_type.is_integral:
        if float(value) != float(np_value):
            raise QueryTypeError(
                f"value {value!r} is not representable as {pdc_type.value}"
            )
        return int(np_value)
    return float(np_value)
