"""Synthetic workloads standing in for the paper's datasets (§V): the VPIC
particle data, the H5BOSS catalog, and the 21-query evaluation workload."""

from .boss import BOSSConfig, BOSSDataset, BOSSFiber, generate_boss
from .queries import (
    QuerySpec,
    boss_flux_windows,
    build_pdc_query,
    multi_object_queries,
    scaling_query,
    single_object_queries,
    spec_truth_mask,
)
from .vpic import VARIABLES, VPICConfig, VPICDataset, generate_vpic

__all__ = [
    "BOSSConfig",
    "BOSSDataset",
    "BOSSFiber",
    "generate_boss",
    "QuerySpec",
    "boss_flux_windows",
    "build_pdc_query",
    "multi_object_queries",
    "scaling_query",
    "single_object_queries",
    "spec_truth_mask",
    "VARIABLES",
    "VPICConfig",
    "VPICDataset",
    "generate_vpic",
]
