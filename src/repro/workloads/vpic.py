"""Synthetic VPIC particle data (§V).

The paper's primary dataset is a 3.3 TB magnetic-reconnection run of the
VPIC plasma code: ~125 billion particles, 7 per-particle variables
(``Energy, x, y, z, Ux, Uy, Uz``) stored as 1-D arrays in cell order.  This
generator reproduces the *properties that drive the evaluation*:

* **Energy distribution** — a thermal bulk plus an accelerated exponential
  tail calibrated so the paper's query windows span the paper's
  selectivities: ``3.5 < E < 3.6`` ≈ 0.0004 % up to ``2.1 < E < 2.2`` ≈
  1.3 % (§V).
* **Spatial clustering of energetic particles** — reconnection accelerates
  particles near the current sheet (the y ≈ 0 plane), so high-energy
  particles are localized in a minority of cells.  This is what makes
  histogram min/max region elimination effective on the real data; without
  it every region would contain tail particles and PDC-H would degenerate
  to a full scan.
* **Cell-order locality** — VPIC writes particles cell by cell, so
  neighbouring array elements have similar positions and correlated
  energies (sorted within each cell here).  This locality is what gives the
  WAH bitmap index its compression (§V: index ≈ 15–17 % of data).

Sizes are configurable; ``virtual_scale`` maps the in-memory array onto a
paper-scale object for the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import PDCError

__all__ = ["VPICConfig", "VPICDataset", "generate_vpic"]

#: Simulation box (matches the coordinate ranges of the paper's queries:
#: ``100 < x < 200``, ``-90 < y < 0``, ``0 < z < 66``).
BOX_X = (0.0, 300.0)
BOX_Y = (-100.0, 100.0)
BOX_Z = (0.0, 132.0)

#: All seven per-particle variables, in the paper's order.
VARIABLES = ("Energy", "x", "y", "z", "Ux", "Uy", "Uz")


@dataclass(frozen=True)
class VPICConfig:
    """Generator parameters."""

    #: Real particles to generate (each stands for ``virtual_scale``).
    n_particles: int = 1 << 20
    #: Particles per cell (VPIC file layout granularity).
    particles_per_cell: int = 64
    #: Fraction of particles in the accelerated tail.
    tail_fraction: float = 0.053
    #: Exponential tail scale: density ratio across the paper's query span
    #: (2.1 → 3.5) is exp(-1.4 / scale) ≈ 1/3200, giving 1.3 % → 0.0004 %.
    tail_scale: float = 0.173
    #: Tail onset energy.
    tail_onset: float = 2.0
    #: Thermal bulk: Weibull(shape) × scale.  A steep shape makes the bulk
    #: die out well below the tail onset (so high-energy windows are
    #: prunable and owned by the tail alone) while still putting ~10 % of
    #: particles above 1.3 — which is what flips the planner to x-first on
    #: the weakly-energy-selective multi-object queries (§VI-B).
    thermal_shape: float = 4.0
    thermal_scale: float = 1.05
    #: Width (in y) of the reconnection current sheet where tail particles
    #: concentrate.
    sheet_width: float = 25.0
    #: Relative tail weight far from any reconnection site.  Near zero so
    #: quiet regions carry no energetic particles at all (prunable).
    background_fraction: float = 1e-6
    seed: int = 2020

    def __post_init__(self) -> None:
        if self.n_particles < self.particles_per_cell:
            raise PDCError("need at least one full cell of particles")
        if not (0.0 < self.tail_fraction < 1.0):
            raise PDCError("tail_fraction must be in (0, 1)")


@dataclass
class VPICDataset:
    """Generated particle arrays keyed by variable name (all float32,
    identical length)."""

    config: VPICConfig
    arrays: Dict[str, np.ndarray]

    @property
    def n_particles(self) -> int:
        return int(self.arrays["Energy"].size)

    def selectivity(self, variable: str, lo: float, hi: float) -> float:
        """Exact fraction of elements in the open window (lo, hi)."""
        a = self.arrays[variable]
        return float(((a > lo) & (a < hi)).mean())


def _cell_grid(n_cells: int) -> Sequence[int]:
    """Factor the cell count into an (nx, ny, nz) grid, x slowest."""
    nz = 1
    while nz * nz * nz < n_cells:
        nz *= 2
    # Find a balanced power-of-two factorization.
    best = (n_cells, 1, 1)
    n = n_cells
    for ny in (1, 2, 4, 8, 16, 32, 64, 128):
        for nz2 in (1, 2, 4, 8, 16, 32, 64, 128):
            if n % (ny * nz2) == 0:
                nx = n // (ny * nz2)
                cand = (nx, ny, nz2)
                if max(cand) / min(cand) < max(best) / min(best):
                    best = cand
    return best


def generate_vpic(config: Optional[VPICConfig] = None) -> VPICDataset:
    """Generate the synthetic particle dataset.

    Deterministic for a given config (explicit seeding throughout).
    """
    cfg = config or VPICConfig()
    rng = np.random.default_rng(cfg.seed)
    ppc = cfg.particles_per_cell
    n = (cfg.n_particles // ppc) * ppc
    n_cells = n // ppc
    nx, ny, nz = _cell_grid(n_cells)

    # Cell coordinates in file order (x slowest, z fastest — VPIC layout).
    cell_idx = np.arange(n_cells)
    cx = cell_idx // (ny * nz)
    cy = (cell_idx // nz) % ny
    cz = cell_idx % nz
    dx = (BOX_X[1] - BOX_X[0]) / nx
    dy = (BOX_Y[1] - BOX_Y[0]) / ny
    dz = (BOX_Z[1] - BOX_Z[0]) / nz

    # Particle positions: cell corner + uniform jitter (cell-order locality).
    jitter = rng.random((3, n))
    x = BOX_X[0] + np.repeat(cx, ppc) * dx + jitter[0] * dx
    y = BOX_Y[0] + np.repeat(cy, ppc) * dy + jitter[1] * dy
    z = BOX_Z[0] + np.repeat(cz, ppc) * dz + jitter[2] * dz

    # Tail probability peaks in the current sheet (y ~ 0) *and* around a
    # handful of reconnection sites along x: energetic particles are
    # clustered in both coordinates, like in real reconnection data.  (The
    # x-localization is what lets histogram min/max eliminate the x-slab
    # regions VPIC's cell order produces.)
    cell_y = BOX_Y[0] + (cy + 0.5) * dy
    cell_x = BOX_X[0] + (cx + 0.5) * dx
    site_rng = np.random.default_rng(cfg.seed + 1)
    n_sites = 6
    sites = BOX_X[0] + (BOX_X[1] - BOX_X[0]) * (
        (np.arange(n_sites) + site_rng.random(n_sites)) / n_sites
    )
    site_width = (BOX_X[1] - BOX_X[0]) / 40.0
    x_weight = np.exp(
        -((cell_x[:, None] - sites[None, :]) / site_width) ** 2
    ).sum(axis=1)
    sheet_weight = np.exp(-((cell_y / cfg.sheet_width) ** 2)) * (
        x_weight + cfg.background_fraction
    )
    # Normalize so the global tail fraction is cfg.tail_fraction.
    p_cell = cfg.tail_fraction * sheet_weight / sheet_weight.mean()
    p_cell = np.minimum(p_cell, 0.95)
    # Renormalize after clipping.
    p_cell *= cfg.tail_fraction / max(p_cell.mean(), 1e-12)
    p_particle = np.repeat(p_cell, ppc)

    is_tail = rng.random(n) < p_particle
    energy = cfg.thermal_scale * rng.weibull(cfg.thermal_shape, n)
    n_tail = int(is_tail.sum())
    energy[is_tail] = cfg.tail_onset + rng.exponential(cfg.tail_scale, n_tail)

    # Momenta: thermal Maxwellian plus bulk flow proportional to sqrt(E)
    # for tail particles (keeps |U| consistent with energy).
    u = rng.normal(0.0, 1.0, (3, n)) * np.sqrt(np.maximum(energy, 1e-6) / 3.0)

    # Cell-order value locality: sort energies (and momenta with them)
    # within each cell, as bulk-flow coherence produces in real data.
    e2 = energy.reshape(n_cells, ppc)
    order = np.argsort(e2, axis=1)
    e2 = np.take_along_axis(e2, order, axis=1)
    energy = e2.reshape(n)
    for k in range(3):
        uk = u[k].reshape(n_cells, ppc)
        u[k] = np.take_along_axis(uk, order, axis=1).reshape(n)

    arrays = {
        "Energy": energy.astype(np.float32),
        "x": x.astype(np.float32),
        "y": y.astype(np.float32),
        "z": z.astype(np.float32),
        "Ux": u[0].astype(np.float32),
        "Uy": u[1].astype(np.float32),
        "Uz": u[2].astype(np.float32),
    }
    return VPICDataset(config=cfg, arrays=arrays)
