"""The paper's query workload (§V): 21 VPIC queries + the BOSS sweep.

* 15 single-variable queries: energy windows ``c < Energy < c + 0.1`` with
  ``c`` stepping from 3.5 (0.0004 % selectivity) down to 2.1 (1.3 %).
* 6 multi-variable queries on (Energy, x, y, z), from highly
  energy-selective (``Energy > 2.0 AND 100 < x < 200 AND -90 < y < 0 AND
  0 < z < 66``) to weakly energy-selective (``Energy > 1.3 AND
  100 < x < 140 ...``) — the last queries are the ones where the planner
  evaluates ``x`` first and the sorted replica loses its edge (§VI-B).
* BOSS flux windows from low to high selectivity (§VI-C).

Queries are expressed as plain data (object, operator, value triples) so
both the PDC engine and the HDF5 baseline can consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..pdc.system import PDCSystem
from ..query.api import PDCQuery, PDCquery_and, PDCquery_create
from ..types import QueryOp

__all__ = [
    "QuerySpec",
    "single_object_queries",
    "multi_object_queries",
    "boss_flux_windows",
    "build_pdc_query",
    "spec_truth_mask",
]

#: One condition as plain data: (object name, operator, value).
CondSpec = Tuple[str, str, float]


@dataclass(frozen=True)
class QuerySpec:
    """A query as data, with a human-readable label."""

    label: str
    conditions: Tuple[CondSpec, ...]

    def __str__(self) -> str:
        return self.label


def single_object_queries(n: int = 15) -> List[QuerySpec]:
    """The 15 single-variable energy-window queries, most selective first
    (matching the paper's x-axis ordering from 0.0004 % to 1.3 %)."""
    lows = np.linspace(3.5, 2.1, n)
    specs = []
    for c in lows:
        c = round(float(c), 1)
        specs.append(
            QuerySpec(
                label=f"{c:.1f}<Energy<{c + 0.1:.1f}",
                conditions=(
                    ("Energy", ">", c),
                    ("Energy", "<", round(c + 0.1, 1)),
                ),
            )
        )
    return specs


def multi_object_queries() -> List[QuerySpec]:
    """The 6 multi-variable queries on Energy, x, y, z.

    Endpoints follow the paper's two printed examples; the middle queries
    interpolate the energy threshold.  Selectivity decreases on Energy from
    Q1 to Q6 while the spatial windows tighten, so the planner's evaluation
    order flips from Energy-first to x-first for the final queries.
    """
    energy_lo = [2.0, 1.9, 1.8, 1.7, 1.35, 1.3]
    x_hi = [200.0, 185.0, 170.0, 155.0, 130.0, 125.0]
    y_lo = [-90.0, -92.0, -94.0, -96.0, -98.0, -100.0]
    specs = []
    for i, (e, xh, yl) in enumerate(zip(energy_lo, x_hi, y_lo), start=1):
        specs.append(
            QuerySpec(
                label=f"Q{i}: E>{e:g}, 100<x<{xh:g}, {yl:g}<y<0, 0<z<66",
                conditions=(
                    ("Energy", ">", e),
                    ("x", ">", 100.0),
                    ("x", "<", xh),
                    ("y", ">", yl),
                    ("y", "<", 0.0),
                    ("z", ">", 0.0),
                    ("z", "<", 66.0),
                ),
            )
        )
    return specs


def scaling_query() -> QuerySpec:
    """The Fig. 6 scaling query: a multi-object condition with ~0.011 %
    selectivity on the synthetic dataset (the paper scales a 0.011 %
    multi-object query from 32 to 512 servers)."""
    return QuerySpec(
        label="scaling: E>2.6, 100<x<150, -90<y<0, 0<z<66",
        conditions=(
            ("Energy", ">", 2.6),
            ("x", ">", 100.0),
            ("x", "<", 150.0),
            ("y", ">", -90.0),
            ("y", "<", 0.0),
            ("z", ">", 0.0),
            ("z", "<", 66.0),
        ),
    )


def boss_flux_windows() -> List[Tuple[float, float]]:
    """Flux windows swept in Fig. 5, from the paper's endpoints
    ``0 < flux < 20`` to ``5 < flux < 20``."""
    return [(0.0, 20.0), (1.0, 20.0), (2.0, 20.0), (3.0, 20.0), (4.0, 20.0), (5.0, 20.0)]


def build_pdc_query(system: PDCSystem, spec: QuerySpec) -> PDCQuery:
    """Materialize a spec against a PDC system via the paper API."""
    query: Optional[PDCQuery] = None
    for obj_name, op, value in spec.conditions:
        obj = system.get_object(obj_name)
        q = PDCquery_create(
            system, obj.meta.object_id, op, obj.meta.pdc_type, value
        )
        query = q if query is None else PDCquery_and(query, q)
    assert query is not None
    return query


def spec_truth_mask(arrays: dict, spec: QuerySpec) -> np.ndarray:
    """Ground-truth boolean mask of a spec over raw arrays (test oracle)."""
    mask = None
    for obj_name, op, value in spec.conditions:
        m = QueryOp(op).apply(arrays[obj_name], value)
        mask = m if mask is None else (mask & m)
    return mask
