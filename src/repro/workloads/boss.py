"""Synthetic H5BOSS catalog (§V, §VI-C).

The Baryon Oscillation Spectroscopic Survey data used in the paper holds
~25 million small "fiber" objects across 2448 HDF5 files; each object
carries rich metadata (plate, right ascension RADEG, declination DECDEG,
MJD, ...) and a flux spectrum of a few thousand values.  Scientists select
~1000 objects by a metadata predicate (``RADEG=153.17 AND DECDEG=23.06``)
and then query flux ranges within them.

This generator reproduces the *workload shape*: many small objects, grouped
into plates where every fiber of a plate shares one (RADEG, DECDEG) pair —
so one metadata predicate selects exactly one plate's fibers.  Counts are
scaled down (the paper's 25 M objects → configurable), with the
fibers-per-plate ratio preserved so a metadata query still selects the same
*number* of objects as in the paper by default (1000).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import PDCError

__all__ = ["BOSSConfig", "BOSSFiber", "BOSSDataset", "generate_boss"]


@dataclass(frozen=True)
class BOSSConfig:
    """Generator parameters."""

    #: Total fiber objects (paper: ~25 million; default scaled down).
    n_objects: int = 20_000
    #: Fibers sharing one (RADEG, DECDEG) plate — the paper's metadata
    #: query selects one plate = 1000 objects.
    fibers_per_plate: int = 1000
    #: Flux samples per fiber (paper fibers hold a few thousand; scaled).
    flux_samples: int = 256
    seed: int = 153

    def __post_init__(self) -> None:
        if self.n_objects < self.fibers_per_plate:
            raise PDCError("need at least one full plate of fibers")


@dataclass
class BOSSFiber:
    """One fiber object: flux payload + metadata tags."""

    name: str
    flux: np.ndarray
    tags: Dict[str, object]


@dataclass
class BOSSDataset:
    """The generated catalog."""

    config: BOSSConfig
    fibers: List[BOSSFiber]
    #: (RADEG, DECDEG) of each plate, indexable by plate id.
    plates: List[Tuple[float, float]]

    @property
    def n_objects(self) -> int:
        return len(self.fibers)

    def target_plate(self) -> Tuple[float, float]:
        """The paper's canonical metadata predicate values
        (RADEG=153.17, DECDEG=23.06) — always plate 0."""
        return self.plates[0]

    def flux_selectivity(self, lo: float, hi: float) -> float:
        """Fraction of flux values in the open window (lo, hi), over the
        target plate's fibers."""
        ra, dec = self.target_plate()
        vals = np.concatenate(
            [f.flux for f in self.fibers if f.tags["RADEG"] == ra and f.tags["DECDEG"] == dec]
        )
        return float(((vals > lo) & (vals < hi)).mean())


def generate_boss(config: BOSSConfig = BOSSConfig()) -> BOSSDataset:
    """Generate the synthetic catalog (deterministic per config).

    Flux values follow a heavy-tailed positive distribution with occasional
    negative (sky-subtracted) samples, so windows like ``(0, 20)`` and
    ``(5, 20)`` have the low/high selectivities the paper sweeps.
    """
    cfg = config
    rng = np.random.default_rng(cfg.seed)
    n_plates = (cfg.n_objects + cfg.fibers_per_plate - 1) // cfg.fibers_per_plate

    # Plate sky coordinates; plate 0 pinned to the paper's example values.
    plates: List[Tuple[float, float]] = [(153.17, 23.06)]
    for _ in range(n_plates - 1):
        plates.append(
            (round(float(rng.uniform(0, 360)), 2), round(float(rng.uniform(-30, 80)), 2))
        )

    fibers: List[BOSSFiber] = []
    for i in range(cfg.n_objects):
        plate = i // cfg.fibers_per_plate
        ra, dec = plates[plate]
        # Spectrum: heavy-tailed lognormal flux plus sky-subtraction noise.
        # Calibrated so the Fig. 5 windows span the paper's selectivity
        # range: (0 < flux < 20) ≈ 65 % down to (5 < flux < 20) ≈ 15-20 %
        # (the paper's printed 11 %→65 % cannot be monotone for nested
        # windows; see EXPERIMENTS.md).
        flux = rng.lognormal(mean=1.2, sigma=2.8, size=cfg.flux_samples)
        flux += rng.normal(0.0, 0.5, cfg.flux_samples)
        fibers.append(
            BOSSFiber(
                name=f"fiber-{plate:04d}-{i % cfg.fibers_per_plate:04d}",
                flux=flux.astype(np.float32),
                tags={
                    "RADEG": ra,
                    "DECDEG": dec,
                    "PLATE": plate,
                    "FIBERID": i % cfg.fibers_per_plate,
                    "MJD": 55000 + plate,
                },
            )
        )
    return BOSSDataset(config=cfg, fibers=fibers, plates=plates)
